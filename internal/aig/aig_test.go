package aig

import (
	"math/rand"
	"testing"

	"repro/internal/tt"
)

func TestLitBasics(t *testing.T) {
	l := MakeLit(5, true)
	if l.Node() != 5 || !l.IsCompl() {
		t.Errorf("MakeLit(5,true) = %v", l)
	}
	if l.Not().IsCompl() {
		t.Error("Not should clear complement")
	}
	if l.Regular() != MakeLit(5, false) {
		t.Error("Regular wrong")
	}
	if l.NotCond(false) != l || l.NotCond(true) != l.Not() {
		t.Error("NotCond wrong")
	}
	if LitFalse.Not() != LitTrue {
		t.Error("const literals wrong")
	}
	if l.String() != "!5" || l.Not().String() != "5" {
		t.Errorf("String: %q %q", l.String(), l.Not().String())
	}
}

func TestAndFolding(t *testing.T) {
	g := New(2)
	a, b := g.PI(0), g.PI(1)
	cases := []struct {
		x, y, want Lit
	}{
		{LitFalse, a, LitFalse},
		{a, LitFalse, LitFalse},
		{LitTrue, a, a},
		{b, LitTrue, b},
		{a, a, a},
		{a, a.Not(), LitFalse},
	}
	for _, c := range cases {
		if got := g.And(c.x, c.y); got != c.want {
			t.Errorf("And(%v,%v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
	if g.NumAnds() != 0 {
		t.Errorf("folding created %d nodes", g.NumAnds())
	}
}

func TestStructuralHashing(t *testing.T) {
	g := New(2)
	a, b := g.PI(0), g.PI(1)
	n1 := g.And(a, b)
	n2 := g.And(b, a)
	if n1 != n2 {
		t.Error("commuted AND not shared")
	}
	n3 := g.And(a.Not(), b)
	if n3 == n1 {
		t.Error("different polarity wrongly shared")
	}
	if g.NumAnds() != 2 {
		t.Errorf("NumAnds = %d, want 2", g.NumAnds())
	}
	if l, ok := g.Lookup(b, a); !ok || l != n1 {
		t.Error("Lookup failed on existing node")
	}
	if _, ok := g.Lookup(a.Not(), b.Not()); ok {
		t.Error("Lookup invented a node")
	}
	if l, ok := g.Lookup(a, LitTrue); !ok || l != a {
		t.Error("Lookup should fold constants")
	}
}

func TestFullAdderFigure1(t *testing.T) {
	// The paper's Figure 1: a full adder has a 7-AND implementation with
	// shared logic between carry (maj3) and sum (xor3).
	g := New(3)
	x1, x2, x3 := g.PI(0), g.PI(1), g.PI(2)
	// carry = maj3; sum = xor3 sharing the half-sum structure:
	axb := g.Xor(x1, x2)                         // 3 nodes
	sum := g.Xor(axb, x3)                        // 3 more nodes
	carry := g.Or(g.And(x1, x2), g.And(axb, x3)) // 3 more, one shared
	g.AddPO(carry)
	g.AddPO(sum)
	if g.NumAnds() > 9 {
		t.Errorf("full adder uses %d ANDs", g.NumAnds())
	}
	outs := g.OutputTTs()
	maj := tt.Var(0, 3).And(tt.Var(1, 3)).Or(tt.Var(0, 3).And(tt.Var(2, 3))).Or(tt.Var(1, 3).And(tt.Var(2, 3)))
	xor3 := tt.Var(0, 3).Xor(tt.Var(1, 3)).Xor(tt.Var(2, 3))
	if !outs[0].Equal(maj) {
		t.Error("carry output is not maj3")
	}
	if !outs[1].Equal(xor3) {
		t.Error("sum output is not xor3")
	}
}

func TestGateOps(t *testing.T) {
	g := New(3)
	a, b, c := g.PI(0), g.PI(1), g.PI(2)
	g.AddPO(g.Or(a, b))
	g.AddPO(g.Xor(a, b))
	g.AddPO(g.Mux(a, b, c))
	g.AddPO(g.Maj3(a, b, c))
	outs := g.OutputTTs()
	va, vb, vc := tt.Var(0, 3), tt.Var(1, 3), tt.Var(2, 3)
	if !outs[0].Equal(va.Or(vb)) {
		t.Error("Or wrong")
	}
	if !outs[1].Equal(va.Xor(vb)) {
		t.Error("Xor wrong")
	}
	if !outs[2].Equal(va.And(vb).Or(va.Not().And(vc))) {
		t.Error("Mux wrong")
	}
	maj := va.And(vb).Or(va.And(vc)).Or(vb.And(vc))
	if !outs[3].Equal(maj) {
		t.Error("Maj3 wrong")
	}
}

func TestMuxSpecialCases(t *testing.T) {
	g := New(3)
	a, b := g.PI(0), g.PI(1)
	if g.Mux(a, b, b) != b {
		t.Error("Mux(s,t,t) should fold to t")
	}
	x := g.Mux(a, b.Not(), b)
	want := g.Xor(a, b)
	if x != want {
		t.Error("Mux(s,!t,t) should be XOR")
	}
}

func TestLevels(t *testing.T) {
	g := New(4)
	n1 := g.And(g.PI(0), g.PI(1))
	n2 := g.And(g.PI(2), g.PI(3))
	n3 := g.And(n1, n2)
	g.AddPO(n3)
	if g.Level(n1.Node()) != 1 || g.Level(n2.Node()) != 1 || g.Level(n3.Node()) != 2 {
		t.Error("levels wrong")
	}
	if g.NumLevels() != 2 {
		t.Errorf("NumLevels = %d, want 2", g.NumLevels())
	}
	chain := g.PI(0)
	for i := 1; i < 4; i++ {
		chain = g.And(chain, g.PI(i))
	}
	g.AddPO(chain)
	if g.NumLevels() != 3 {
		t.Errorf("chain NumLevels = %d, want 3", g.NumLevels())
	}
}

func TestRefCountsAndMFFC(t *testing.T) {
	g := New(3)
	a, b, c := g.PI(0), g.PI(1), g.PI(2)
	ab := g.And(a, b)
	abc := g.And(ab, c)
	g.AddPO(abc)
	refs := g.RefCounts()
	if refs[ab.Node()] != 1 || refs[abc.Node()] != 1 {
		t.Errorf("refs = %v", refs)
	}
	// MFFC of abc includes ab (single fanout).
	if got := g.MFFCSize(abc.Node(), refs); got != 2 {
		t.Errorf("MFFC(abc) = %d, want 2", got)
	}
	// refs must be restored.
	refs2 := g.RefCounts()
	for i := range refs {
		if refs[i] != refs2[i] {
			t.Fatal("MFFCSize corrupted ref counts")
		}
	}
	// Give ab another fanout; MFFC of abc shrinks to 1.
	g.AddPO(ab)
	refs = g.RefCounts()
	if got := g.MFFCSize(abc.Node(), refs); got != 1 {
		t.Errorf("MFFC(abc) with shared ab = %d, want 1", got)
	}
}

func TestCleanupRemovesDangling(t *testing.T) {
	g := New(3)
	a, b, c := g.PI(0), g.PI(1), g.PI(2)
	used := g.And(a, b)
	g.And(b, c) // dangling
	g.And(a, c) // dangling
	g.AddPO(used)
	if g.NumAnds() != 3 {
		t.Fatalf("setup: NumAnds = %d", g.NumAnds())
	}
	ng := g.Cleanup()
	if ng.NumAnds() != 1 {
		t.Errorf("after Cleanup NumAnds = %d, want 1", ng.NumAnds())
	}
	if idx, err := Equivalent(g, ng); err != nil || idx != -1 {
		t.Errorf("Cleanup changed function: idx=%d err=%v", idx, err)
	}
	if err := ng.Check(); err != nil {
		t.Errorf("Check after Cleanup: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(2)
	g.AddPO(g.And(g.PI(0), g.PI(1)))
	h := g.Clone()
	h.AddPO(h.Or(h.PI(0), h.PI(1)))
	if g.NumPOs() != 1 || h.NumPOs() != 2 {
		t.Error("Clone not independent")
	}
	if idx, _ := Equivalent(g, g.Clone()); idx != -1 {
		t.Error("Clone not equivalent")
	}
}

func TestTFISupportAndConeSize(t *testing.T) {
	g := New(4)
	n := g.And(g.PI(0), g.PI(2))
	m := g.And(n, g.PI(3))
	g.AddPO(m)
	sup := g.TFISupport(m)
	if len(sup) != 3 {
		t.Errorf("TFISupport = %v", sup)
	}
	if g.ConeSize(m) != 2 {
		t.Errorf("ConeSize = %d, want 2", g.ConeSize(m))
	}
	if g.ConeSize(g.PI(1)) != 0 {
		t.Error("PI cone size should be 0")
	}
}

func TestCheckDetectsNothingOnValid(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	g := randomAIG(5, 40, r)
	if err := g.Check(); err != nil {
		t.Errorf("Check on valid AIG: %v", err)
	}
}

// randomAIG builds a random strashed AIG for tests.
func randomAIG(pis, ands int, r *rand.Rand) *AIG {
	g := New(pis)
	lits := make([]Lit, 0, pis+ands)
	for i := 0; i < pis; i++ {
		lits = append(lits, g.PI(i))
	}
	for len(lits) < pis+ands {
		a := lits[r.Intn(len(lits))].NotCond(r.Intn(2) == 1)
		b := lits[r.Intn(len(lits))].NotCond(r.Intn(2) == 1)
		l := g.And(a, b)
		if l.Node() > pis && int(l.Node()) >= len(lits)-ands { // count only fresh nodes loosely
			lits = append(lits, l)
		} else {
			lits = append(lits, l) // folded or shared: still usable as input
		}
	}
	g.AddPO(lits[len(lits)-1])
	g.AddPO(lits[len(lits)-2].Not())
	return g
}

func TestSimVectorMatchesSimAll(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	g := randomAIG(6, 60, r)
	tabs := g.SimAll()
	// Pattern k: PI i gets bit i of minterm index; compare 64 minterms.
	pat := make([]uint64, 6)
	for i := range pat {
		pat[i] = tt.Var(i, 6).Words()[0]
	}
	vals := g.SimVector(pat)
	for id := 0; id < g.NumObjs(); id++ {
		if vals[id] != tabs[id].Words()[0] {
			t.Fatalf("node %d: SimVector %x != SimAll %x", id, vals[id], tabs[id].Words()[0])
		}
	}
}

func TestEval(t *testing.T) {
	g := New(2)
	g.AddPO(g.And(g.PI(0), g.PI(1)))
	g.AddPO(g.Xor(g.PI(0), g.PI(1)))
	for m := 0; m < 4; m++ {
		out := g.Eval(uint64(m))
		a, b := m&1 == 1, m>>1&1 == 1
		if out[0] != (a && b) || out[1] != (a != b) {
			t.Errorf("Eval(%d) = %v", m, out)
		}
	}
}

func TestRandomSimCheck(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	g := randomAIG(8, 100, r)
	h := g.Cleanup()
	if idx, err := RandomSimCheck(g, h, 4, r); err != nil || idx != -1 {
		t.Errorf("equivalent AIGs flagged: idx=%d err=%v", idx, err)
	}
	// Break one output.
	h2 := g.Clone()
	h2.SetPO(0, h2.PO(0).Not())
	if idx, _ := RandomSimCheck(g, h2, 4, r); idx != 0 {
		t.Errorf("broken output not detected: idx=%d", idx)
	}
}

func TestEquivalentDetectsMismatch(t *testing.T) {
	g := New(2)
	g.AddPO(g.And(g.PI(0), g.PI(1)))
	h := New(2)
	h.AddPO(h.Or(h.PI(0), h.PI(1)))
	idx, err := Equivalent(g, h)
	if err != nil || idx != 0 {
		t.Errorf("idx=%d err=%v", idx, err)
	}
	h3 := New(3)
	h3.AddPO(h3.PI(0))
	if _, err := Equivalent(g, h3); err == nil {
		t.Error("PI mismatch should error")
	}
}

func TestCutTT(t *testing.T) {
	g := New(4)
	n1 := g.And(g.PI(0), g.PI(1))
	n2 := g.Or(n1, g.PI(2))
	g.AddPO(n2)
	// CutTT computes the function of the *node*; n2 is a complemented
	// literal (Or builds NAND of complements), so flip accordingly.
	leaves := []int{g.PI(0).Node(), g.PI(1).Node(), g.PI(2).Node()}
	f := g.CutTT(n2.Node(), leaves)
	if n2.IsCompl() {
		f = f.Not()
	}
	want := tt.Var(0, 3).And(tt.Var(1, 3)).Or(tt.Var(2, 3))
	if !f.Equal(want) {
		t.Error("CutTT wrong")
	}
	// Cut at an internal node.
	f2 := g.CutTT(n2.Node(), []int{n1.Node(), g.PI(2).Node()})
	if n2.IsCompl() {
		f2 = f2.Not()
	}
	want2 := tt.Var(0, 2).Or(tt.Var(1, 2))
	if !f2.Equal(want2) {
		t.Error("CutTT at internal leaf wrong")
	}
}
