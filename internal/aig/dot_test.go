package aig

import (
	"strings"
	"testing"
)

func TestWriteDot(t *testing.T) {
	g := New(2)
	g.SetPIName(0, "a")
	n := g.And(g.PI(0), g.PI(1).Not())
	g.AddPO(n.Not())
	g.SetPOName(0, "out")
	var b strings.Builder
	if err := g.WriteDot(&b, "test"); err != nil {
		t.Fatal(err)
	}
	dot := b.String()
	for _, want := range []string{"digraph aig", `label="test"`, `label="a"`, `label="out"`, "style=dashed", "shape=box", "shape=invhouse"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Error("DOT output not closed")
	}
}
