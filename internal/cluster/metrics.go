package cluster

// Per-peer instrument names. Cardinality is bounded by the static
// membership: every name is precomputed once in New (never built on a
// hot path), and the suffix vocabulary is this fixed constant set —
// aiglint's metricname analyzer checks that every peerMetricName call
// site passes one of these constants.
const (
	peerMetricFills               = "fills"
	peerMetricFillFailures        = "fill_failures"
	peerMetricProbeFailures       = "probe_failures"
	peerMetricEvictions           = "evictions"
	peerMetricReadmissions        = "readmissions"
	peerMetricReplications        = "replications"
	peerMetricReplicationFailures = "replication_failures"
)

// peerInstruments holds one peer's precomputed counter names; hot
// paths read these fields instead of formatting strings.
type peerInstruments struct {
	fills               string
	fillFailures        string
	probeFailures       string
	evictions           string
	readmissions        string
	replications        string
	replicationFailures string
}

func newPeerInstruments(id string) peerInstruments {
	return peerInstruments{
		fills:               peerMetricName(id, peerMetricFills),
		fillFailures:        peerMetricName(id, peerMetricFillFailures),
		probeFailures:       peerMetricName(id, peerMetricProbeFailures),
		evictions:           peerMetricName(id, peerMetricEvictions),
		readmissions:        peerMetricName(id, peerMetricReadmissions),
		replications:        peerMetricName(id, peerMetricReplications),
		replicationFailures: peerMetricName(id, peerMetricReplicationFailures),
	}
}

// peerMetricName builds "cluster/peer_<id>_<suffix>". The suffix must
// be one of the peerMetric constants (lint-enforced); the node ID is
// flattened to the registry's snake_case convention.
func peerMetricName(id, suffix string) string {
	return "cluster/peer_" + flattenID(id) + "_" + suffix
}

// flattenID maps a node ID into a snake_case metric segment: ASCII
// letters are lowercased, digits kept, everything else becomes '_'.
func flattenID(id string) string {
	b := []byte(id)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c >= 'A' && c <= 'Z':
			b[i] = c - 'A' + 'a'
		default:
			b[i] = '_'
		}
	}
	return string(b)
}
