package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/faultinject"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// maxPeerBody bounds one peer request body: a fill request carries up
// to two inline AIGER payloads, each bounded like an external submit.
const maxPeerBody = 33 << 20

// Handler mounts the cluster's peer-to-peer endpoints in front of the
// service API; everything that is not /v1/cluster/* falls through to
// the wrapped daemon handler behind the external gate (lifecycle 503s
// and stale-epoch 409s).
//
// Epoch enforcement is deliberately split by endpoint class:
//
//   - fill is ring-routed computation — ANY epoch mismatch is refused
//     (a request routed by a different ring may have picked the wrong
//     owner; the structured 409 teaches the sender the fresh view);
//   - aigs/result puts and gets are content-addressed and
//     placement-independent (a payload or score is bit-identical
//     whoever holds it), so they carry no epoch check — which is also
//     what lets an old-epoch member stream handoff data to a
//     new-epoch joiner;
//   - the external API refuses only *stale* (lower) gateway epochs: a
//     gateway that is ahead of this node is harmless (answers are
//     placement-independent), and this node converges via announce.
func (n *Node) Handler() http.Handler {
	inner := n.svc.Handler()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/fill", n.peerGuard(n.handleFill))
	mux.HandleFunc("POST /v1/cluster/aigs", n.peerGuard(n.handlePutAIG))
	mux.HandleFunc("GET /v1/cluster/aigs/{fp}", n.peerGuard(n.handleGetAIGER))
	mux.HandleFunc("POST /v1/cluster/result", n.peerGuard(n.handlePutResult))
	mux.HandleFunc("GET /v1/cluster/health", n.peerGuard(n.handleHealth))
	mux.HandleFunc("GET /v1/cluster/status", n.peerGuard(n.handleStatus))
	mux.HandleFunc("POST /v1/cluster/reconfigure", n.peerGuard(n.handleReconfigure))
	mux.HandleFunc("POST /v1/cluster/drain", n.peerGuard(n.handleDrain))
	mux.HandleFunc("POST /v1/cluster/announce", n.peerGuard(n.handleAnnounce))
	mux.Handle("/", n.externalGate(inner))
	return mux
}

// externalGate wraps the external API (healthz included): a joining
// node is receiving-only and a draining node has left routing — both
// answer 503 with a Retry-After scaled to the remaining handoff
// backlog. Gating healthz is what makes lifecycle eviction stick:
// peers' probes keep a joining or draining node out of their routing
// tables without any extra protocol. A request stamped with a stale
// membership epoch is refused with the structured 409 so the gateway
// re-resolves instead of routing by a ring that no longer exists.
func (n *Node) externalGate(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if st := n.state.Load(); st != stateActive {
			w.Header().Set("Retry-After", strconv.Itoa(n.drainRetrySeconds()))
			peerError(w, http.StatusServiceUnavailable, "node is %s", stateName(st))
			return
		}
		if hdr := r.Header.Get(client.EpochHeader); hdr != "" {
			if got, err := strconv.ParseUint(hdr, 10, 64); err == nil {
				local := n.table.Epoch()
				if got < local {
					n.replyEpochMismatch(w, got)
					return
				}
				if got > local {
					// The sender is ahead: serve anyway (answers are
					// placement-independent) but count it — a stream
					// of these means this node is partitioned from
					// the announce traffic.
					telemetry.Add("cluster/ahead_epoch_requests", 1)
				}
			}
		}
		inner.ServeHTTP(w, r)
	})
}

// replyEpochMismatch answers the structured 409: the local epoch and
// full membership, so the refused sender re-resolves without a second
// round trip.
func (n *Node) replyEpochMismatch(w http.ResponseWriter, got uint64) {
	telemetry.Add("cluster/epoch_rejects", 1)
	local := n.table.Epoch()
	peerReply(w, http.StatusConflict, client.EpochStatus{
		Error:   fmt.Sprintf("membership epoch mismatch: request at %d, node at %d", got, local),
		Node:    n.cfg.NodeID,
		Epoch:   local,
		Members: n.view().urls,
	})
}

// peerGuard is the cluster-endpoint analog of the service's request
// guard: it adopts the requesting node's traceparent (or roots a fresh
// trace) and echoes the trace identity, so a request that hops
// gateway → node → owner stitches into one trace ID end to end.
func (n *Node) peerGuard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		telemetry.Add("cluster/peer_requests", 1)
		ctx := r.Context()
		if sc, ok := trace.Extract(r.Header); ok {
			ctx = trace.ContextWithRemote(ctx, sc)
		}
		ctx, sp := trace.Start(ctx, "cluster/peer_request")
		sp.Attr("path", r.URL.Path).Attr("node", n.cfg.NodeID)
		if sp != nil {
			w.Header().Set(trace.TraceIDHeader, sp.Context().TraceID.String())
			w.Header().Set("traceparent", trace.Traceparent(sp.Context()))
		}
		defer sp.End()
		h(w, r.WithContext(ctx))
	}
}

func peerReply(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		telemetry.Add("cluster/write_errors", 1)
	}
}

func peerError(w http.ResponseWriter, code int, format string, args ...any) {
	telemetry.Add("cluster/http_errors", 1)
	peerReply(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// internInline installs an inline fill payload if the fingerprint is
// not already stored, verifying the payload actually hashes to the
// fingerprint the requester claims — a torn or corrupted payload must
// not be interned under the wrong key.
func (n *Node) internInline(fp string, payload []byte) error {
	if len(payload) == 0 || n.svc.HasAIG(fp) {
		return nil
	}
	v, err := n.svc.InternAIGER(payload)
	if err != nil {
		return err
	}
	if v.Fingerprint != fp {
		return fmt.Errorf("payload fingerprint %s does not match claimed %s", v.Fingerprint, fp)
	}
	return nil
}

// handleFill answers a peer's fill request: intern any inline
// payloads, score through the full local path (cache, singleflight,
// bounded pool), reply with the scores. The response body is routed
// through the fill_reply fault point so chaos suites can serve torn
// responses.
func (n *Node) handleFill(w http.ResponseWriter, r *http.Request) {
	// Fill is ring-routed: the sender picked this node as an owner
	// under *its* ring. Any epoch disagreement means the routing
	// decision may be wrong — refuse with the structured 409 and let
	// the sender converge (adopt if behind, push if ahead).
	if hdr := r.Header.Get(client.EpochHeader); hdr != "" {
		if got, err := strconv.ParseUint(hdr, 10, 64); err == nil {
			if got != n.table.Epoch() {
				n.replyEpochMismatch(w, got)
				return
			}
			// An equal-epoch ring-routed RPC proves an old member
			// installed the ring that includes us: a joining node
			// activates on it.
			n.observeEpoch(got, nil)
		}
	}
	var req client.FillRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxPeerBody))
	if err := dec.Decode(&req); err != nil {
		peerError(w, http.StatusBadRequest, "decoding fill request: %v", err)
		return
	}
	if err := n.internInline(req.A, req.AIGERA); err != nil {
		peerError(w, http.StatusBadRequest, "interning %s: %v", req.A, err)
		return
	}
	if err := n.internInline(req.B, req.AIGERB); err != nil {
		peerError(w, http.StatusBadRequest, "interning %s: %v", req.B, err)
		return
	}
	if !n.svc.HasAIG(req.A) || !n.svc.HasAIG(req.B) {
		peerError(w, http.StatusNotFound, "pair (%s, %s) not fully stored here and no payload supplied", req.A, req.B)
		return
	}
	scores, err := n.svc.ScorePairLocal(r.Context(), req.A, req.B, req.Metrics)
	if err != nil {
		if errors.Is(err, service.ErrBusy) {
			w.Header().Set("Retry-After", strconv.Itoa(n.svc.RetryAfterSeconds()))
			peerError(w, http.StatusTooManyRequests, "saturated, retry later")
			return
		}
		peerError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(client.FillResponse{Scores: scores}); err != nil {
		peerError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if _, err := faultinject.WrapWriter(PointFillReply, w).Write(buf.Bytes()); err != nil {
		telemetry.Add("cluster/write_errors", 1)
	}
}

// handlePutAIG is the receive side of AIG replication: intern the
// payload content-addressed (idempotent) without re-triggering the
// intern observer — replication must not cascade.
func (n *Node) handlePutAIG(w http.ResponseWriter, r *http.Request) {
	payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPeerBody))
	if err != nil {
		peerError(w, http.StatusBadRequest, "reading payload: %v", err)
		return
	}
	v, err := n.svc.InternAIGER(payload)
	if err != nil {
		peerError(w, http.StatusBadRequest, "%v", err)
		return
	}
	peerReply(w, http.StatusOK, v)
}

// handleGetAIGER serves the canonical AIGER encoding of a stored
// fingerprint to a peer doing on-demand AIG fetch.
func (n *Node) handleGetAIGER(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	payload, err := n.svc.AIGERFor(fp)
	if err != nil {
		peerError(w, http.StatusNotFound, "%v", err)
		return
	}
	peerReply(w, http.StatusOK, map[string][]byte{"aiger": payload})
}

// handlePutResult is the receive side of result replication: install
// the scores in the local cache. Sound because scores are a pure
// function of the pair — see service.FillPairCache.
func (n *Node) handlePutResult(w http.ResponseWriter, r *http.Request) {
	var req client.ResultPut
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxPeerBody)).Decode(&req); err != nil {
		peerError(w, http.StatusBadRequest, "decoding result: %v", err)
		return
	}
	if req.A == "" || req.B == "" || len(req.Scores) == 0 {
		peerError(w, http.StatusBadRequest, "result put needs a, b, and scores")
		return
	}
	n.svc.FillPairCache(req.A, req.B, req.Scores)
	telemetry.Add("cluster/results_received", 1)
	peerReply(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleHealth reports this node's view of the cluster.
func (n *Node) handleHealth(w http.ResponseWriter, _ *http.Request) {
	peerReply(w, http.StatusOK, n.healthSnapshot())
}

// handleStatus reports membership epoch, lifecycle state, per-peer
// health/breaker state, and handoff progress — the aigw status
// surface and the poll target for 202-admitted membership operations.
func (n *Node) handleStatus(w http.ResponseWriter, _ *http.Request) {
	peerReply(w, http.StatusOK, n.Status())
}

// handleReconfigure admits a membership-change proposal. The reply is
// 202: the handoff and epoch install run asynchronously (they span
// many peer round trips — holding the operator's HTTP request open for
// that would just trade one timeout for another); poll /v1/cluster/
// status until the epoch shows up.
func (n *Node) handleReconfigure(w http.ResponseWriter, r *http.Request) {
	var req client.ReconfigureRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxPeerBody)).Decode(&req); err != nil {
		peerError(w, http.StatusBadRequest, "decoding reconfigure request: %v", err)
		return
	}
	if err := n.Reconfigure(req); err != nil {
		peerError(w, http.StatusConflict, "%v", err)
		return
	}
	peerReply(w, http.StatusAccepted, n.Status())
}

// handleDrain starts this node's departure (also reachable via
// SIGUSR1). 202 like reconfigure: the pre-copy runs asynchronously.
func (n *Node) handleDrain(w http.ResponseWriter, r *http.Request) {
	if err := n.StartDrain(); err != nil {
		peerError(w, http.StatusConflict, "%v", err)
		return
	}
	peerReply(w, http.StatusAccepted, n.Status())
}

// handleAnnounce receives a peer's membership notification: a
// draining peer is evicted from routing immediately; a newer epoch
// with a membership view is adopted; an equal epoch activates a
// joining node.
func (n *Node) handleAnnounce(w http.ResponseWriter, r *http.Request) {
	var req client.AnnounceRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxPeerBody)).Decode(&req); err != nil {
		peerError(w, http.StatusBadRequest, "decoding announce: %v", err)
		return
	}
	telemetry.Add("cluster/announces_received", 1)
	if req.Draining && req.Node != "" && req.Node != n.cfg.NodeID {
		if n.table.SetDown(req.Node, true) {
			telemetry.Add("cluster/peer_evictions", 1)
			n.logPeerEvent("peer_down", req.Node, 0)
		}
	}
	n.observeEpoch(req.Epoch, req.Members)
	peerReply(w, http.StatusOK, map[string]bool{"ok": true})
}
