package cluster

import (
	"io"
	"net/http"
	"testing"
	"time"
)

// hangHandler parks every request until the client gives up: the shape
// of a peer that accepted the connection and then stopped making
// progress (GC death spiral, blocked disk, half-partitioned host). The
// body is drained first — with an unread body the HTTP server never
// watches for the client disconnect, so the request context would not
// fire even after the caller aborted.
var hangHandler http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	_, _ = io.Copy(io.Discard, r.Body)
	<-r.Context().Done()
})

// TestCloseUnblocksHungProbe: a health probe stuck inside a peer that
// stopped answering must not delay Close by the probe timeout. The
// probe derives from the node-lifetime context, so Close cancels the
// in-flight round trip and returns within RPC-cancellation time.
//
// Regression: probe used to mint its timeout context from
// context.Background(), leaving Close to wait out the full
// ProbeTimeout of any probe in flight.
func TestCloseUnblocksHungProbe(t *testing.T) {
	tc := newTestCluster(t, 2, func(c *Config) {
		c.ProbeInterval = 10 * time.Millisecond
		c.ProbeTimeout = 30 * time.Second
		c.PeerAttemptTimeout = 30 * time.Second
	})

	// n2 goes dark: connections accepted, no responses.
	tc.swaps["n2"].h.Store(&hangHandler)
	// Let n1's prober tick into the hung peer.
	time.Sleep(50 * time.Millisecond)

	start := time.Now()
	tc.nodes["n1"].Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v with a probe hung in a dead peer; want prompt return via base-context cancellation", elapsed)
	}
}

// TestCloseAbortsReplication: an in-flight replication fan-out into a
// hung peer must not delay Close by ReplicationTimeout. The fan-out's
// context is bounded by the node lifetime (context.AfterFunc on the
// base context), so Close cancels the RPC and the wg drains promptly.
//
// Regression: Close used to wg.Wait on replication goroutines whose
// only bound was the full ReplicationTimeout.
func TestCloseAbortsReplication(t *testing.T) {
	tc := newTestCluster(t, 3, func(c *Config) {
		c.ProbeInterval = time.Hour // no probes: keep every peer "alive"
		c.FailureThreshold = 1000   // and un-evictable by inline failures
		c.PeerAttemptTimeout = 30 * time.Second
		c.ReplicationTimeout = 30 * time.Second
	})

	// Every peer of n1 goes dark, then an intern triggers replication
	// into the hung cluster.
	tc.swaps["n2"].h.Store(&hangHandler)
	tc.swaps["n3"].h.Store(&hangHandler)
	tc.submit("n1", testAIG(t, 7))
	time.Sleep(50 * time.Millisecond) // fan-out goroutine is now in flight

	start := time.Now()
	tc.nodes["n1"].Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v with replication hung in dead peers; want prompt return via base-context cancellation", elapsed)
	}
	// The aborted fan-out is visible, proving it really was in flight.
	if got := tc.reg.Counter("cluster/replication_failures").Value(); got == 0 {
		t.Fatal("expected the aborted replication fan-out to record cluster/replication_failures")
	}
}
