package cluster

import (
	"testing"
	"time"

	"repro/internal/faultinject"
)

// The chaos suite (run under `make chaos`, always with -race) proves
// the tentpole's robustness claims against deterministic injected
// faults: partitions mid-request, torn peer responses, replication
// killed mid-fan-out, and eviction/re-admission timing. Every scenario
// asserts the answer stays bit-identical to a standalone daemon — the
// cluster is allowed to get slower under faults, never wrong.

func resetFaults(t *testing.T) {
	t.Helper()
	faultinject.Disable()
	faultinject.Reset()
	t.Cleanup(func() {
		faultinject.Disable()
		faultinject.Reset()
	})
}

// TestChaosPartitionMidRequestFailover: partitioning the pair's first
// owner away from its peers must not change any answer. The fill fan
// -out fails over to the replica inline (bounded by the transport
// error, far under the request budget), probes then evict the dead
// peer, and healing the partition re-admits it within a probe window.
func TestChaosPartitionMidRequestFailover(t *testing.T) {
	resetFaults(t)
	aigA, aigB := testAIG(t, 11), testAIG(t, 12)
	want := singleNodeScores(t, aigA, aigB, nil)

	tc := newTestCluster(t, 3, nil)
	a := tc.submit(tc.ids[0], aigA)
	b := tc.submit(tc.ids[0], aigB)
	owners, nonOwner := tc.pairRoles(a, b)

	// Partition the first owner: all node-to-node traffic to it fails.
	tc.trans.set(tc.hosts[owners[0]], true)

	start := time.Now()
	scores, _, err := tc.metrics(nonOwner, a, b, nil, nil)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("metrics during partition: %v", err)
	}
	assertBitIdentical(t, scores, want, "failover answer")
	if elapsed > 5*time.Second {
		t.Fatalf("failover took %v, want bounded well under the request budget", elapsed)
	}

	// Probes must evict the partitioned peer from every other node's
	// routing table (FailureThreshold=2 at 25ms probes → well under 2s).
	waitFor(t, 2*time.Second, "eviction of "+owners[0], func() bool {
		return tc.nodes[nonOwner].table.IsDown(owners[0])
	})

	// Heal the partition: re-admission within a probe window.
	tc.trans.set(tc.hosts[owners[0]], false)
	waitFor(t, 2*time.Second, "re-admission of "+owners[0], func() bool {
		return !tc.nodes[nonOwner].table.IsDown(owners[0])
	})

	// The re-admitted owner serves fills again: clear the non-owner's
	// cache path by asking for a fresh pair routed to the same cluster.
	scores, _, err = tc.metrics(nonOwner, a, b, nil, nil)
	if err != nil {
		t.Fatalf("metrics after re-admission: %v", err)
	}
	assertBitIdentical(t, scores, want, "post-readmission answer")
}

// TestChaosTornFillReply: a torn (truncated) fill response from the
// first owner must be detected by the requester (JSON decode failure)
// and failed over — the answer still arrives, still bit-identical.
func TestChaosTornFillReply(t *testing.T) {
	resetFaults(t)
	aigA, aigB := testAIG(t, 13), testAIG(t, 14)
	want := singleNodeScores(t, aigA, aigB, nil)

	tc := newTestCluster(t, 3, nil)
	a := tc.submit(tc.ids[0], aigA)
	b := tc.submit(tc.ids[0], aigB)
	_, nonOwner := tc.pairRoles(a, b)

	faultinject.Arm(PointFillReply, faultinject.OnCall(1),
		faultinject.Fault{Mode: faultinject.ModeTornWrite})
	faultinject.Enable()

	scores, _, err := tc.metrics(nonOwner, a, b, nil, nil)
	if err != nil {
		t.Fatalf("metrics with torn fill reply: %v", err)
	}
	assertBitIdentical(t, scores, want, "answer after torn reply")
	if fires := faultinject.Fires(PointFillReply); fires != 1 {
		t.Fatalf("torn-write fault fired %d times, want 1", fires)
	}
	if n := tc.reg.Counter("cluster/fill_failures").Value(); n < 1 {
		t.Fatalf("fill_failures = %d, want >= 1 (the torn reply must count)", n)
	}
}

// TestChaosKillMidReplication: killing AIG replication entirely must
// not lose answers — peer fill inlines the AIGER payloads, so an owner
// that never received the structures interns them on demand and the
// replication repairs itself through the read path.
func TestChaosKillMidReplication(t *testing.T) {
	resetFaults(t)
	aigA, aigB := testAIG(t, 15), testAIG(t, 16)
	want := singleNodeScores(t, aigA, aigB, nil)

	faultinject.Arm(PointReplicateAIG, faultinject.Always(),
		faultinject.Fault{Mode: faultinject.ModeError})
	faultinject.Enable()

	tc := newTestCluster(t, 3, nil)
	a := tc.submit(tc.ids[0], aigA)
	b := tc.submit(tc.ids[0], aigB)
	owners, nonOwner := tc.pairRoles(a, b)

	scores, _, err := tc.metrics(nonOwner, a, b, nil, nil)
	if err != nil {
		t.Fatalf("metrics with replication dead: %v", err)
	}
	assertBitIdentical(t, scores, want, "answer with replication dead")

	// Self-repair: the serving owner interned the inline payloads.
	var repaired bool
	for _, id := range owners {
		if tc.svcs[id].HasAIG(a) && tc.svcs[id].HasAIG(b) {
			repaired = true
		}
	}
	if !repaired && !tc.svcs[nonOwner].HasAIG(a) {
		t.Fatal("no owner holds the pair after a successful fill — inline repair failed")
	}
}

// TestChaosDeadOwnerDegradedLocal: with EVERY owner of a pair dead, a
// non-owner must still answer — degraded to a local compute — and the
// answer is still bit-identical (scoring is location-independent).
func TestChaosDeadOwnerDegradedLocal(t *testing.T) {
	resetFaults(t)
	aigA, aigB := testAIG(t, 17), testAIG(t, 18)
	want := singleNodeScores(t, aigA, aigB, nil)

	tc := newTestCluster(t, 3, nil)
	a := tc.submit(tc.ids[0], aigA)
	b := tc.submit(tc.ids[0], aigB)
	owners, nonOwner := tc.pairRoles(a, b)
	// The surviving node holds the structures itself (submitted before
	// the owners die) — the scenario is "owners dead, data present",
	// not "data lost".
	tc.submit(nonOwner, aigA)
	tc.submit(nonOwner, aigB)
	for _, id := range owners {
		tc.swaps[id].h.Store(&deadHandler)
		tc.trans.set(tc.hosts[id], true)
	}

	tc.reg.Reset()
	scores, _, err := tc.metrics(nonOwner, a, b, nil, nil)
	if err != nil {
		t.Fatalf("metrics with all owners dead: %v", err)
	}
	assertBitIdentical(t, scores, want, "degraded local answer")
	if n := tc.reg.Counter("cluster/degraded_local_computes").Value(); n != 1 {
		t.Fatalf("degraded_local_computes = %d, want 1", n)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
