package cluster

import (
	"testing"
	"time"

	"repro/internal/cluster/ring"
	"repro/internal/faultinject"
	"repro/internal/service/client"
)

// The chaos suite (run under `make chaos`, always with -race) proves
// the tentpole's robustness claims against deterministic injected
// faults: partitions mid-request, torn peer responses, replication
// killed mid-fan-out, and eviction/re-admission timing. Every scenario
// asserts the answer stays bit-identical to a standalone daemon — the
// cluster is allowed to get slower under faults, never wrong.

func resetFaults(t *testing.T) {
	t.Helper()
	faultinject.Disable()
	faultinject.Reset()
	t.Cleanup(func() {
		faultinject.Disable()
		faultinject.Reset()
	})
}

// TestChaosPartitionMidRequestFailover: partitioning the pair's first
// owner away from its peers must not change any answer. The fill fan
// -out fails over to the replica inline (bounded by the transport
// error, far under the request budget), probes then evict the dead
// peer, and healing the partition re-admits it within a probe window.
func TestChaosPartitionMidRequestFailover(t *testing.T) {
	resetFaults(t)
	aigA, aigB := testAIG(t, 11), testAIG(t, 12)
	want := singleNodeScores(t, aigA, aigB, nil)

	tc := newTestCluster(t, 3, nil)
	a := tc.submit(tc.ids[0], aigA)
	b := tc.submit(tc.ids[0], aigB)
	owners, nonOwner := tc.pairRoles(a, b)

	// Partition the first owner: all node-to-node traffic to it fails.
	tc.trans.set(tc.hosts[owners[0]], true)

	start := time.Now()
	scores, _, err := tc.metrics(nonOwner, a, b, nil, nil)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("metrics during partition: %v", err)
	}
	assertBitIdentical(t, scores, want, "failover answer")
	if elapsed > 5*time.Second {
		t.Fatalf("failover took %v, want bounded well under the request budget", elapsed)
	}

	// Probes must evict the partitioned peer from every other node's
	// routing table (FailureThreshold=2 at 25ms probes → well under 2s).
	waitFor(t, 2*time.Second, "eviction of "+owners[0], func() bool {
		return tc.nodes[nonOwner].table.IsDown(owners[0])
	})

	// Heal the partition: re-admission within a probe window.
	tc.trans.set(tc.hosts[owners[0]], false)
	waitFor(t, 2*time.Second, "re-admission of "+owners[0], func() bool {
		return !tc.nodes[nonOwner].table.IsDown(owners[0])
	})

	// The re-admitted owner serves fills again: clear the non-owner's
	// cache path by asking for a fresh pair routed to the same cluster.
	scores, _, err = tc.metrics(nonOwner, a, b, nil, nil)
	if err != nil {
		t.Fatalf("metrics after re-admission: %v", err)
	}
	assertBitIdentical(t, scores, want, "post-readmission answer")
}

// TestChaosTornFillReply: a torn (truncated) fill response from the
// first owner must be detected by the requester (JSON decode failure)
// and failed over — the answer still arrives, still bit-identical.
func TestChaosTornFillReply(t *testing.T) {
	resetFaults(t)
	aigA, aigB := testAIG(t, 13), testAIG(t, 14)
	want := singleNodeScores(t, aigA, aigB, nil)

	tc := newTestCluster(t, 3, nil)
	a := tc.submit(tc.ids[0], aigA)
	b := tc.submit(tc.ids[0], aigB)
	_, nonOwner := tc.pairRoles(a, b)

	faultinject.Arm(PointFillReply, faultinject.OnCall(1),
		faultinject.Fault{Mode: faultinject.ModeTornWrite})
	faultinject.Enable()

	scores, _, err := tc.metrics(nonOwner, a, b, nil, nil)
	if err != nil {
		t.Fatalf("metrics with torn fill reply: %v", err)
	}
	assertBitIdentical(t, scores, want, "answer after torn reply")
	if fires := faultinject.Fires(PointFillReply); fires != 1 {
		t.Fatalf("torn-write fault fired %d times, want 1", fires)
	}
	if n := tc.reg.Counter("cluster/fill_failures").Value(); n < 1 {
		t.Fatalf("fill_failures = %d, want >= 1 (the torn reply must count)", n)
	}
}

// TestChaosKillMidReplication: killing AIG replication entirely must
// not lose answers — peer fill inlines the AIGER payloads, so an owner
// that never received the structures interns them on demand and the
// replication repairs itself through the read path.
func TestChaosKillMidReplication(t *testing.T) {
	resetFaults(t)
	aigA, aigB := testAIG(t, 15), testAIG(t, 16)
	want := singleNodeScores(t, aigA, aigB, nil)

	faultinject.Arm(PointReplicateAIG, faultinject.Always(),
		faultinject.Fault{Mode: faultinject.ModeError})
	faultinject.Enable()

	tc := newTestCluster(t, 3, nil)
	a := tc.submit(tc.ids[0], aigA)
	b := tc.submit(tc.ids[0], aigB)
	owners, nonOwner := tc.pairRoles(a, b)

	scores, _, err := tc.metrics(nonOwner, a, b, nil, nil)
	if err != nil {
		t.Fatalf("metrics with replication dead: %v", err)
	}
	assertBitIdentical(t, scores, want, "answer with replication dead")

	// Self-repair: the serving owner interned the inline payloads.
	var repaired bool
	for _, id := range owners {
		if tc.svcs[id].HasAIG(a) && tc.svcs[id].HasAIG(b) {
			repaired = true
		}
	}
	if !repaired && !tc.svcs[nonOwner].HasAIG(a) {
		t.Fatal("no owner holds the pair after a successful fill — inline repair failed")
	}
}

// TestChaosDeadOwnerDegradedLocal: with EVERY owner of a pair dead, a
// non-owner must still answer — degraded to a local compute — and the
// answer is still bit-identical (scoring is location-independent).
func TestChaosDeadOwnerDegradedLocal(t *testing.T) {
	resetFaults(t)
	aigA, aigB := testAIG(t, 17), testAIG(t, 18)
	want := singleNodeScores(t, aigA, aigB, nil)

	tc := newTestCluster(t, 3, nil)
	a := tc.submit(tc.ids[0], aigA)
	b := tc.submit(tc.ids[0], aigB)
	owners, nonOwner := tc.pairRoles(a, b)
	// The surviving node holds the structures itself (submitted before
	// the owners die) — the scenario is "owners dead, data present",
	// not "data lost".
	tc.submit(nonOwner, aigA)
	tc.submit(nonOwner, aigB)
	for _, id := range owners {
		tc.swaps[id].h.Store(&deadHandler)
		tc.trans.set(tc.hosts[id], true)
	}

	tc.reg.Reset()
	scores, _, err := tc.metrics(nonOwner, a, b, nil, nil)
	if err != nil {
		t.Fatalf("metrics with all owners dead: %v", err)
	}
	assertBitIdentical(t, scores, want, "degraded local answer")
	if n := tc.reg.Counter("cluster/degraded_local_computes").Value(); n != 1 {
		t.Fatalf("degraded_local_computes = %d, want 1", n)
	}
}

// TestChaosKillSourceMidHandoff: killing a handoff source (every AIG
// transfer it attempts errors) must abort the reconfiguration before
// the install — the epoch moves nowhere, the joiner keeps waiting, no
// key changes owner, and every answer stays bit-identical. Clearing
// the fault and re-proposing converges the same change.
func TestChaosKillSourceMidHandoff(t *testing.T) {
	resetFaults(t)
	type pair struct {
		a, b string
		want map[string]float64
	}
	tc := newTestCluster(t, 3, nil)
	var pairs []pair
	var fps []string
	for _, s := range [][2]int64{{71, 72}, {73, 74}} {
		a, b, want := tc.warmPair(s[0], s[1])
		pairs = append(pairs, pair{a, b, want})
		fps = append(fps, a, b)
	}
	tc.waitReplicated(fps...)
	for _, p := range pairs {
		tc.waitPairCached(p.a, p.b)
	}

	joiner := tc.addJoiner("n4", 2)
	req := client.ReconfigureRequest{Epoch: 2, Peers: tc.allPeers(), Joining: []string{"n4"}}
	sender := handoffAIGSender(t, tc, req, fps)

	faultinject.Arm(PointHandoffAIG, faultinject.Always(),
		faultinject.Fault{Mode: faultinject.ModeError})
	faultinject.Enable()

	if err := tc.nodes[sender].Reconfigure(req); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "handoff abort", func() bool {
		return tc.reg.Counter("cluster/reconfigure_failures").Value() >= 1
	})

	// Abort-before-install: no member moved, the joiner still waits.
	old := []string{"n1", "n2", "n3"}
	for _, id := range old {
		if e := tc.nodes[id].Epoch(); e != 1 {
			t.Fatalf("%s installed epoch %d after an aborted handoff, want 1", id, e)
		}
	}
	if st := joiner.State(); st != "joining" {
		t.Fatalf("joiner state = %q after abort, want joining", st)
	}
	var keys []string
	for _, p := range pairs {
		keys = append(keys, p.a, p.b, ring.PairKey(p.a, p.b))
	}
	assertNoUnownedKey(t, tc, keys)
	for _, id := range old {
		for _, p := range pairs {
			scores, _, err := tc.metrics(id, p.a, p.b, nil, nil)
			if err != nil {
				t.Fatalf("metrics via %s after abort: %v", id, err)
			}
			assertBitIdentical(t, scores, p.want, "via "+id+" after aborted handoff")
		}
	}

	// Clear the fault: the same proposal now converges end to end.
	faultinject.Disable()
	tc.proposeAll(req, old...)
	tc.waitMembershipAt(2, tc.ids...)
	for _, p := range pairs {
		scores, _, err := tc.metrics("n4", p.a, p.b, nil, nil)
		if err != nil {
			t.Fatalf("metrics via joiner after retry: %v", err)
		}
		assertBitIdentical(t, scores, p.want, "via joiner after retried handoff")
	}
}

// TestChaosTornHandoffStream: tearing the network under an in-flight
// handoff stream (every connection to the joiner drops) must abort the
// reconfiguration with the failure recorded in the sender's progress
// counters and no epoch installed; healing the partition and retrying
// converges.
func TestChaosTornHandoffStream(t *testing.T) {
	resetFaults(t)
	tc := newTestCluster(t, 3, nil)
	a, b, want := tc.warmPair(81, 82)
	c, d, _ := tc.warmPair(83, 84)
	tc.waitReplicated(a, b, c, d)
	tc.waitPairCached(a, b)
	tc.waitPairCached(c, d)

	joiner := tc.addJoiner("n4", 2)
	req := client.ReconfigureRequest{Epoch: 2, Peers: tc.allPeers(), Joining: []string{"n4"}}
	sender := handoffAIGSender(t, tc, req, []string{a, b, c, d})

	// Tear the stream: the joiner's host drops every connection.
	tc.trans.set(tc.hosts["n4"], true)
	if err := tc.nodes[sender].Reconfigure(req); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "handoff abort on torn stream", func() bool {
		return tc.reg.Counter("cluster/reconfigure_failures").Value() >= 1
	})
	if st := tc.nodes[sender].Status(); st.Handoff.Failed < 1 {
		t.Fatalf("sender handoff failed-counter = %d, want >= 1", st.Handoff.Failed)
	}
	for _, id := range []string{"n1", "n2", "n3"} {
		if e := tc.nodes[id].Epoch(); e != 1 {
			t.Fatalf("%s installed epoch %d after a torn handoff, want 1", id, e)
		}
	}
	if st := joiner.State(); st != "joining" {
		t.Fatalf("joiner state = %q after torn stream, want joining", st)
	}
	scores, _, err := tc.metrics("n1", a, b, nil, nil)
	if err != nil {
		t.Fatalf("metrics after torn handoff: %v", err)
	}
	assertBitIdentical(t, scores, want, "answer after torn handoff")

	// Heal and retry: the cluster converges and the joiner serves.
	tc.trans.set(tc.hosts["n4"], false)
	tc.proposeAll(req, "n1", "n2", "n3")
	tc.waitMembershipAt(2, tc.ids...)
	scores, _, err = tc.metrics("n4", a, b, nil, nil)
	if err != nil {
		t.Fatalf("metrics via joiner after heal: %v", err)
	}
	assertBitIdentical(t, scores, want, "via joiner after healed handoff")
}

// TestChaosPartitionDuringEpochInstall: one member is "partitioned"
// exactly at the commit point — its handoff streamed, its table never
// swapped. The rest of the cluster moves on; the behind member keeps
// answering bit-identically (its ring-routed RPCs are refused with the
// structured 409, which is also the repair signal), no key is ever
// unowned, and anti-entropy converges it without a restart.
func TestChaosPartitionDuringEpochInstall(t *testing.T) {
	resetFaults(t)
	tc := newTestCluster(t, 3, nil)
	a, b, want := tc.warmPair(91, 92)
	tc.waitReplicated(a, b)
	tc.waitPairCached(a, b)

	tc.addJoiner("n4", 2)
	req := client.ReconfigureRequest{Epoch: 2, Peers: tc.allPeers(), Joining: []string{"n4"}}

	faultinject.Arm(PointEpochInstall, faultinject.OnCall(1),
		faultinject.Fault{Mode: faultinject.ModeError})
	faultinject.Enable()
	tc.proposeAll(req, "n1", "n2", "n3")

	waitFor(t, 3*time.Second, "one failed epoch install", func() bool {
		return tc.reg.Counter("cluster/epoch_install_failures").Value() == 1
	})
	old := []string{"n1", "n2", "n3"}
	waitFor(t, 5*time.Second, "two members at epoch 2", func() bool {
		ahead := 0
		for _, id := range old {
			if tc.nodes[id].Epoch() == 2 {
				ahead++
			}
		}
		return ahead >= 2
	})

	// Mid-divergence: the invariant holds and every member answers.
	keys := []string{a, b, ring.PairKey(a, b)}
	assertNoUnownedKey(t, tc, keys)
	for _, id := range old {
		scores, _, err := tc.metrics(id, a, b, nil, nil)
		if err != nil {
			t.Fatalf("metrics via %s mid-divergence: %v", id, err)
		}
		assertBitIdentical(t, scores, want, "via "+id+" mid-divergence")
	}

	// Anti-entropy: announces push the new membership, and any ring
	// -routed RPC the behind member sends is refused with the 409 it
	// adopts from. Keep routing fresh pairs through it until it
	// catches up.
	deadline := time.Now().Add(8 * time.Second)
	seed := int64(9100)
	for {
		behind := ""
		for _, id := range old {
			if tc.nodes[id].Epoch() != 2 {
				behind = id
			}
		}
		if behind == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never adopted epoch 2", behind)
		}
		fa := tc.submit(behind, testAIG(t, seed))
		fb := tc.submit(behind, testAIG(t, seed+1))
		seed += 2
		if _, _, err := tc.metrics(behind, fa, fb, []string{"VEO"}, nil); err != nil {
			t.Fatalf("metrics via behind member %s: %v", behind, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	tc.waitMembershipAt(2, tc.ids...)
	assertNoUnownedKey(t, tc, keys)
	for _, id := range tc.ids {
		scores, _, err := tc.metrics(id, a, b, nil, nil)
		if err != nil {
			t.Fatalf("metrics via %s after convergence: %v", id, err)
		}
		assertBitIdentical(t, scores, want, "via "+id+" after convergence")
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
