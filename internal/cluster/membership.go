package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/cluster/ring"
	"repro/internal/service/client"
	"repro/internal/telemetry"
)

// Dynamic membership. The static parts of the original design — ring
// placement as a pure function of the member list, health gating who
// is asked but never who owns — stay; what moves is the member list
// itself, under a monotonically increasing epoch:
//
//   - Every peer RPC and gateway request carries the sender's epoch
//     (client.EpochHeader). A ring-routed request at the wrong epoch is
//     refused with a structured 409 carrying the answering node's
//     membership, so the refused side can adopt and re-route — epochs
//     are self-healing, not just self-protecting.
//   - A membership change (Reconfigure) streams exactly the keys whose
//     ownership moves (ring.MovedOwners — ~1/N of the key space) to
//     their new owners *before* installing the new table, so at every
//     instant every key has at least one owner that holds (or can
//     recompute) it: no key is ever unowned.
//   - A departing node drains: it pre-copies its owned keys to their
//     successors, leaves routing (healthz 503 + a draining announce),
//     and keeps answering peer traffic until the copy is done.
//   - A new node joins receiving-only (external API 503) and activates
//     when the first announce or peer RPC arrives at its own epoch —
//     proof that an old member finished handing off to it.
//
// All of it leans on the same invariant as the static design: scores
// are a pure function of (pair, metric), so a key that a handoff
// missed is recomputed bit-identically wherever it lands.

// Node lifecycle states.
const (
	stateActive int32 = iota
	stateJoining
	stateDraining
)

func stateName(s int32) string {
	switch s {
	case stateJoining:
		return "joining"
	case stateDraining:
		return "draining"
	default:
		return "active"
	}
}

// memberView is one epoch's immutable peer wiring: the clients,
// instruments, and failure counters for every member except self. Hot
// paths load it once per operation; a reconfiguration swaps the whole
// view atomically, reusing entries for retained members so breaker
// state and failure counts survive the change.
type memberView struct {
	urls     map[string]string         // every member incl. self
	peers    map[string]*client.Client // every member except self
	peerIDs  []string                  // sorted, excludes self
	pm       map[string]peerInstruments
	failures map[string]*atomic.Int64
}

// view returns the current member wiring. Callers must nil-guard map
// lookups: a peer can leave between loading the view and using it.
func (n *Node) view() *memberView { return n.members.Load() }

// buildView wires clients for a membership, carrying over the client,
// instruments, and failure counter of every member whose URL is
// unchanged from prev.
func (n *Node) buildView(urls map[string]string, prev *memberView) (*memberView, error) {
	v := &memberView{
		urls:     make(map[string]string, len(urls)),
		peers:    make(map[string]*client.Client, len(urls)-1),
		pm:       make(map[string]peerInstruments, len(urls)-1),
		failures: make(map[string]*atomic.Int64, len(urls)-1),
	}
	ids := make([]string, 0, len(urls))
	for id := range urls {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		v.urls[id] = urls[id]
		if id == n.cfg.NodeID {
			continue
		}
		v.peerIDs = append(v.peerIDs, id)
		if prev != nil && prev.urls[id] == urls[id] && prev.peers[id] != nil {
			v.peers[id] = prev.peers[id]
			v.pm[id] = prev.pm[id]
			v.failures[id] = prev.failures[id]
			continue
		}
		c, err := client.New(client.Config{
			BaseURL:        urls[id],
			HTTPClient:     n.cfg.HTTPClient,
			MaxAttempts:    n.cfg.PeerMaxAttempts,
			AttemptTimeout: n.cfg.PeerAttemptTimeout,
			BaseBackoff:    peerBaseBackoff,
			MaxBackoff:     peerMaxBackoff,
			Headers:        n.stampEpoch,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %s: %w", id, err)
		}
		v.peers[id] = c
		v.pm[id] = newPeerInstruments(id)
		v.failures[id] = &atomic.Int64{}
	}
	return v, nil
}

// installMembership swaps to a new membership under a strictly greater
// epoch: wire the peers first, then install the epoch-tagged ring, so
// any lookup that sees the new ring also finds clients for its
// members. Refuses stale epochs. No network I/O happens under the
// lock.
func (n *Node) installMembership(epoch uint64, urls map[string]string) error {
	n.memberMu.Lock()
	defer n.memberMu.Unlock()
	if epoch <= n.table.Epoch() {
		return fmt.Errorf("cluster: epoch %d is not newer than installed %d", epoch, n.table.Epoch())
	}
	ids := make([]string, 0, len(urls))
	for id := range urls {
		ids = append(ids, id)
	}
	r, err := ring.New(ids, n.cfg.VNodes, n.cfg.Replication)
	if err != nil {
		return err
	}
	v, err := n.buildView(urls, n.view())
	if err != nil {
		return err
	}
	n.members.Store(v)
	if !n.table.Install(epoch, r) {
		return fmt.Errorf("cluster: concurrent install won epoch %d", n.table.Epoch())
	}
	telemetry.Add("cluster/epoch_installs", 1)
	n.logMembershipEvent("epoch_install", epoch, len(ids))
	return nil
}

// State returns the node's lifecycle state name.
func (n *Node) State() string { return stateName(n.state.Load()) }

// Epoch returns the installed membership epoch.
func (n *Node) Epoch() uint64 { return n.table.Epoch() }

// activate flips a joining node to active: its backfill has arrived
// (an old member announced, or sent a ring-routed RPC, at this node's
// epoch — either only happens after that member installed the ring
// that includes us, which handoff-before-install guarantees comes
// after our keys did).
func (n *Node) activate() {
	if n.state.CompareAndSwap(stateJoining, stateActive) {
		telemetry.Add("cluster/join_activations", 1)
		n.logMembershipEvent("join_activated", n.table.Epoch(), len(n.view().urls))
	}
}

// observeEpoch drives membership convergence from an incoming signal
// (announce body, or a peer RPC's epoch header): equal epochs activate
// a joining node; a higher epoch with a membership view is adopted.
func (n *Node) observeEpoch(epoch uint64, members map[string]string) {
	local := n.table.Epoch()
	switch {
	case epoch == local:
		n.activate()
	case epoch > local && len(members) > 0:
		// Adopting mid-reconfigure would race our own install; the
		// in-flight reconfigure ends at this epoch or aborts, either
		// way convergence retries on the next signal.
		if n.reconfiguring.Load() {
			return
		}
		if err := n.installMembership(epoch, members); err == nil {
			telemetry.Add("cluster/epoch_adoptions", 1)
			n.activate()
		}
	}
}

// resolveEpochConflict is the sender-side half of convergence: a peer
// refused us with a 409. If the peer is ahead, adopt its membership;
// if it is behind, push ours so it catches up. ctx is the refused
// request's context — the repair push deliberately detaches from it
// (the caller's answer must not wait on repair; the push is bounded by
// the node lifetime instead), so only the synchronous adopt path runs
// under it.
func (n *Node) resolveEpochConflict(ctx context.Context, se *client.StaleEpochError) {
	if ctx.Err() != nil {
		return
	}
	local := n.table.Epoch()
	if se.Epoch > local {
		n.observeEpoch(se.Epoch, se.Members)
		return
	}
	if se.Epoch >= local {
		return
	}
	v := n.view()
	c := v.peers[se.Node]
	if c == nil {
		return
	}
	req := client.AnnounceRequest{Node: n.cfg.NodeID, Epoch: local, Members: v.urls}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ctx, cancel := context.WithTimeout(n.baseCtx, n.cfg.ReplicationTimeout)
		defer cancel()
		if err := c.ClusterAnnounce(ctx, req); err == nil {
			telemetry.Add("cluster/epoch_repairs", 1)
		}
	}()
}

// announceAll pushes a membership notification to every current peer,
// best-effort and bounded by the node lifetime.
func (n *Node) announceAll(req client.AnnounceRequest) {
	v := n.view()
	for _, id := range v.peerIDs {
		c := v.peers[id]
		if c == nil {
			continue
		}
		n.wg.Add(1)
		go func(c *client.Client) {
			defer n.wg.Done()
			ctx, cancel := context.WithTimeout(n.baseCtx, n.cfg.ReplicationTimeout)
			defer cancel()
			if err := c.ClusterAnnounce(ctx, req); err != nil {
				telemetry.Add("cluster/announce_failures", 1)
			}
		}(c)
	}
}

// Reconfigure validates a membership-change proposal and runs it
// asynchronously: plan the handoff, stream the moved keys, install the
// new table, announce. Returns once the change is admitted (the caller
// polls Status for completion). Only one membership operation runs at
// a time.
func (n *Node) Reconfigure(req client.ReconfigureRequest) error {
	if req.Epoch <= n.table.Epoch() {
		return fmt.Errorf("cluster: proposed epoch %d is not newer than installed %d", req.Epoch, n.table.Epoch())
	}
	if len(req.Peers) == 0 {
		return fmt.Errorf("cluster: reconfigure needs a non-empty peer set")
	}
	if _, ok := req.Peers[n.cfg.NodeID]; !ok {
		return fmt.Errorf("cluster: node %s is not in the proposed membership (drain it instead)", n.cfg.NodeID)
	}
	if n.state.Load() == stateDraining {
		return fmt.Errorf("cluster: node is draining")
	}
	if !n.reconfiguring.CompareAndSwap(false, true) {
		return fmt.Errorf("cluster: a membership operation is already in progress")
	}
	telemetry.Add("cluster/reconfigures", 1)
	n.logMembershipEvent("reconfigure_admitted", req.Epoch, len(req.Peers))
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer n.reconfiguring.Store(false)
		n.runReconfigure(req)
	}()
	return nil
}

// runReconfigure is the async body of a membership change: handoff
// first, install only if every transfer succeeded (abort-on-error —
// installing a ring whose new owners are missing keys would break the
// no-unowned-key invariant for cached results), then announce so
// behind peers and the joining members converge.
func (n *Node) runReconfigure(req client.ReconfigureRequest) {
	ctx, cancel := context.WithCancel(n.baseCtx)
	defer cancel()
	prev := n.table.Ring()
	ids := make([]string, 0, len(req.Peers))
	for id := range req.Peers {
		ids = append(ids, id)
	}
	next, err := ring.New(ids, n.cfg.VNodes, n.cfg.Replication)
	if err != nil {
		telemetry.Add("cluster/reconfigure_failures", 1)
		return
	}
	if err := n.runHandoff(ctx, handoffPlanReconfigure(n, prev, next, req), req.Peers, true); err != nil {
		telemetry.Add("cluster/reconfigure_failures", 1)
		n.logMembershipEvent("reconfigure_aborted", req.Epoch, len(req.Peers))
		return
	}
	if err := n.installEpoch(req.Epoch, req.Peers); err != nil {
		telemetry.Add("cluster/reconfigure_failures", 1)
		return
	}
	n.announceAll(client.AnnounceRequest{
		Node: n.cfg.NodeID, Epoch: req.Epoch, Members: n.view().urls,
	})
}

// StartDrain begins this node's departure: leave routing immediately
// (healthz 503 plus a draining announce, so peers evict us without
// waiting out probe failures), then pre-copy every key we own to the
// member that inherits it when we are gone. Peer endpoints keep
// answering throughout, so in-flight and routed-before-eviction
// requests complete normally. Best-effort: a failed copy is recorded,
// not fatal — the successor recomputes bit-identically on demand.
func (n *Node) StartDrain() error {
	if !n.reconfiguring.CompareAndSwap(false, true) {
		return fmt.Errorf("cluster: a membership operation is already in progress")
	}
	if !n.state.CompareAndSwap(stateActive, stateDraining) {
		n.reconfiguring.Store(false)
		if n.state.Load() == stateDraining {
			return nil // drain is idempotent
		}
		return fmt.Errorf("cluster: node is %s, not active", n.State())
	}
	telemetry.Add("cluster/drains", 1)
	n.logMembershipEvent("drain_started", n.table.Epoch(), len(n.view().urls))
	n.announceAll(client.AnnounceRequest{Node: n.cfg.NodeID, Epoch: n.table.Epoch(), Draining: true})
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer n.reconfiguring.Store(false)
		ctx, cancel := context.WithCancel(n.baseCtx)
		defer cancel()
		cur := n.table.Ring()
		if err := n.runHandoff(ctx, handoffPlanDrain(n, cur), n.view().urls, false); err != nil {
			telemetry.Add("cluster/drain_handoff_failures", 1)
		}
		n.logMembershipEvent("drain_handoff_done", n.table.Epoch(), len(n.view().urls))
	}()
	return nil
}

// Status assembles the node's membership/handoff status — the wire
// answer of GET /v1/cluster/status and the aigw status surface.
func (n *Node) Status() client.StatusView {
	v := n.view()
	sv := client.StatusView{
		Node:     n.cfg.NodeID,
		State:    n.State(),
		Epoch:    n.table.Epoch(),
		Members:  v.urls,
		Down:     n.table.Down(),
		Failures: make(map[string]int, len(v.peerIDs)),
		Handoff:  n.handoff.snapshot(),
	}
	if sv.Down == nil {
		sv.Down = []string{}
	}
	for _, id := range v.peerIDs {
		if f := v.failures[id]; f != nil {
			sv.Failures[id] = int(f.Load())
		}
		if c := v.peers[id]; c != nil {
			if open := c.OpenBreakers(); len(open) > 0 {
				if sv.Breakers == nil {
					sv.Breakers = make(map[string][]string)
				}
				sv.Breakers[id] = open
			}
		}
	}
	return sv
}

func (n *Node) logMembershipEvent(event string, epoch uint64, members int) {
	if n.cfg.Events == nil {
		return
	}
	n.cfg.Events.Log(event, map[string]any{
		"node":    n.cfg.NodeID,
		"epoch":   epoch,
		"members": members,
	})
}
