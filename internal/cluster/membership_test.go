package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster/ring"
	"repro/internal/service"
	"repro/internal/service/client"
)

// The membership suite exercises the dynamic-membership tentpole
// through the same black-box fixture as the static cluster tests: a
// cluster that grows, drains, and re-keys must keep every answer
// bit-identical to a standalone daemon, keep every key owned by at
// least one active member, and never recompute a result the handoff
// already moved.

// addJoiner boots a fresh member in join mode at the given epoch, with
// a peer view of the existing members plus itself, and registers it in
// the fixture maps so submit/metrics address it like any other member.
func (tc *testCluster) addJoiner(id string, epoch uint64) *Node {
	tc.t.Helper()
	sw := &swapHandler{}
	ts := httptest.NewServer(sw)
	tc.t.Cleanup(ts.Close)
	peers := make(map[string]string, len(tc.urls)+1)
	for mid, u := range tc.urls {
		peers[mid] = u
	}
	peers[id] = ts.URL
	svc := service.New(service.Config{Workers: 2, QueueDepth: 16})
	node, err := New(svc, Config{
		NodeID:             id,
		Peers:              peers,
		Epoch:              epoch,
		Join:               true,
		ProbeInterval:      25 * time.Millisecond,
		ProbeTimeout:       250 * time.Millisecond,
		FailureThreshold:   2,
		PeerAttemptTimeout: time.Second,
		PeerMaxAttempts:    1,
		HTTPClient:         tc.httpCli,
	})
	if err != nil {
		tc.t.Fatal(err)
	}
	h := node.Handler()
	sw.h.Store(&h)
	tc.ids = append(tc.ids, id)
	tc.swaps[id] = sw
	tc.urls[id] = ts.URL
	tc.hosts[id] = ts.Listener.Addr().String()
	tc.svcs[id] = svc
	tc.nodes[id] = node
	tc.t.Cleanup(func() {
		node.Close()
		svc.Close()
	})
	return node
}

// allPeers snapshots the fixture's full member map (joiners included)
// as the Peers field of a reconfigure proposal.
func (tc *testCluster) allPeers() map[string]string {
	peers := make(map[string]string, len(tc.urls))
	for id, u := range tc.urls {
		peers[id] = u
	}
	return peers
}

// proposeAll submits one reconfigure proposal to each listed member.
// Every member must admit it: each streams a disjoint share of the
// moved keys (primary-alive-sender rule), so a member skipping the
// change would leave its share to on-demand recompute.
func (tc *testCluster) proposeAll(req client.ReconfigureRequest, ids ...string) {
	tc.t.Helper()
	for _, id := range ids {
		if err := tc.nodes[id].Reconfigure(req); err != nil {
			tc.t.Fatalf("reconfigure on %s: %v", id, err)
		}
	}
}

// waitMembershipAt waits until every listed member has installed epoch
// and reports the active state.
func (tc *testCluster) waitMembershipAt(epoch uint64, ids ...string) {
	tc.t.Helper()
	waitFor(tc.t, 5*time.Second, fmt.Sprintf("epoch %d on all members", epoch), func() bool {
		for _, id := range ids {
			n := tc.nodes[id]
			if n.Epoch() != epoch || n.State() != "active" {
				return false
			}
		}
		return true
	})
}

// waitReplicated waits until every ring owner of each fingerprint
// holds the AIG — the precondition for handoff plans to be complete
// (a node only streams keys it actually stores).
func (tc *testCluster) waitReplicated(fps ...string) {
	tc.t.Helper()
	r := tc.nodes[tc.ids[0]].table.Ring()
	waitFor(tc.t, 3*time.Second, "AIG replication convergence", func() bool {
		for _, fp := range fps {
			for _, id := range r.Owners(fp) {
				if !tc.svcs[id].HasAIG(fp) {
					return false
				}
			}
		}
		return true
	})
}

// waitPairCached waits until every ring owner of the pair holds the
// cached result (async result replication has converged).
func (tc *testCluster) waitPairCached(a, b string) {
	tc.t.Helper()
	r := tc.nodes[tc.ids[0]].table.Ring()
	owners := r.Owners(ring.PairKey(a, b))
	waitFor(tc.t, 3*time.Second, "result replication convergence", func() bool {
		for _, id := range owners {
			if !hasCachedPair(tc.svcs[id], a, b) {
				return false
			}
		}
		return true
	})
}

func hasCachedPair(svc *service.Server, a, b string) bool {
	for _, pr := range svc.CachedPairResults() {
		if (pr.A == a && pr.B == b) || (pr.A == b && pr.B == a) {
			return true
		}
	}
	return false
}

func ownsUnder(r *ring.Ring, id, key string) bool {
	for _, o := range r.Owners(key) {
		if o == id {
			return true
		}
	}
	return false
}

// assertNoUnownedKey checks the DESIGN §5 invariant at one instant:
// every key has at least one ACTIVE member that considers itself an
// owner under its own installed table — even while members disagree
// about the epoch mid-change.
func assertNoUnownedKey(t *testing.T, tc *testCluster, keys []string) {
	t.Helper()
	for _, key := range keys {
		owned := false
		for _, id := range tc.ids {
			n := tc.nodes[id]
			if n.State() != "active" {
				continue
			}
			if ownsUnder(n.table.Ring(), id, key) {
				owned = true
				break
			}
		}
		if !owned {
			t.Fatalf("key %s has no active owner under any installed table", key)
		}
	}
}

// handoffAIGSender returns the old member that the proposal makes the
// primary sender of at least one stored AIG with a non-empty target
// set — the handoff "source" the chaos scenarios kill mid-stream.
func handoffAIGSender(t *testing.T, tc *testCluster, req client.ReconfigureRequest, fps []string) string {
	t.Helper()
	prev := tc.nodes[tc.ids[0]].table.Ring()
	ids := make([]string, 0, len(req.Peers))
	for id := range req.Peers {
		ids = append(ids, id)
	}
	next, err := ring.New(ids, ring.DefaultVNodes, ring.DefaultReplication)
	if err != nil {
		t.Fatal(err)
	}
	joining := make(map[string]bool, len(req.Joining))
	for _, id := range req.Joining {
		joining[id] = true
	}
	for _, fp := range fps {
		owners := prev.Owners(fp)
		if len(owners) == 0 {
			continue
		}
		sender := owners[0]
		if !tc.svcs[sender].HasAIG(fp) {
			continue
		}
		targets := 0
		for _, id := range ring.MovedOwners(prev, next, fp) {
			if id != sender {
				targets++
			}
		}
		for _, id := range next.Owners(fp) {
			if joining[id] && id != sender {
				targets++
			}
		}
		if targets > 0 {
			return sender
		}
	}
	t.Fatal("no old member streams an AIG under this proposal — adjust test seeds")
	return ""
}

// warmPair submits both AIGs through the first node and scores the
// pair through every member, so each one holds the cached result (an
// owner computes or cache-hits locally; a non-owner caches its fill) —
// the precondition for handoff plans to carry the pair wherever its
// primary sender is. Returns the fingerprints plus the standalone
// -daemon reference scores.
func (tc *testCluster) warmPair(seedA, seedB int64) (a, b string, want map[string]float64) {
	tc.t.Helper()
	ga, gb := testAIG(tc.t, seedA), testAIG(tc.t, seedB)
	want = singleNodeScores(tc.t, ga, gb, nil)
	a = tc.submit(tc.ids[0], ga)
	b = tc.submit(tc.ids[0], gb)
	for _, id := range tc.ids {
		if _, _, err := tc.metrics(id, a, b, nil, nil); err != nil {
			tc.t.Fatalf("warm compute via %s: %v", id, err)
		}
	}
	return a, b, want
}

// TestClusterJoinReconfigureMovesKeys: growing 3 → 4 members must (a)
// keep the joiner receiving-only until its backfill lands, (b) stream
// every key the joiner owns under the new ring before any member
// installs it, and (c) afterwards answer every previously computed
// pair from cache — zero recomputes — bit-identically through every
// member, the joiner included.
func TestClusterJoinReconfigureMovesKeys(t *testing.T) {
	resetFaults(t)
	type pair struct {
		a, b string
		want map[string]float64
	}
	tc := newTestCluster(t, 3, nil)
	var pairs []pair
	var fps []string
	for _, s := range [][2]int64{{41, 42}, {43, 44}, {45, 46}} {
		a, b, want := tc.warmPair(s[0], s[1])
		pairs = append(pairs, pair{a, b, want})
		fps = append(fps, a, b)
	}
	tc.waitReplicated(fps...)
	for _, p := range pairs {
		tc.waitPairCached(p.a, p.b)
	}

	// A fresh member boots receiving-only at the proposed epoch: its
	// external API (healthz included) refuses until backfill proof.
	joiner := tc.addJoiner("n4", 2)
	if got := joiner.State(); got != "joining" {
		t.Fatalf("fresh joiner state = %q, want joining", got)
	}
	resp, err := http.Get(tc.urls["n4"] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("joining node healthz = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("joining node 503 carries no Retry-After")
	}

	req := client.ReconfigureRequest{Epoch: 2, Peers: tc.allPeers(), Joining: []string{"n4"}}
	tc.proposeAll(req, "n1", "n2", "n3")
	tc.waitMembershipAt(2, tc.ids...)

	// Handoff-before-install: every key the joiner owns under epoch 2
	// was already there when it activated.
	next := joiner.table.Ring()
	ownedKeys := 0
	for _, fp := range fps {
		if !ownsUnder(next, "n4", fp) {
			continue
		}
		ownedKeys++
		if !tc.svcs["n4"].HasAIG(fp) {
			t.Fatalf("joiner owns AIG %s under epoch 2 but never received it", fp)
		}
	}
	var keys []string
	keys = append(keys, fps...)
	for _, p := range pairs {
		key := ring.PairKey(p.a, p.b)
		keys = append(keys, key)
		if !ownsUnder(next, "n4", key) {
			continue
		}
		ownedKeys++
		if !hasCachedPair(tc.svcs["n4"], p.a, p.b) {
			t.Fatalf("joiner owns pair (%s, %s) under epoch 2 but its cached result never arrived", p.a, p.b)
		}
	}
	if ownedKeys == 0 {
		t.Fatal("joiner owns no test key under the new ring — adjust test seeds")
	}
	assertNoUnownedKey(t, tc, keys)

	// The handed-off caches make recomputation unnecessary: every
	// member answers every warmed pair bit-identically, at zero new
	// computes cluster-wide.
	tc.reg.Reset()
	for _, id := range tc.ids {
		for _, p := range pairs {
			scores, _, err := tc.metrics(id, p.a, p.b, nil, nil)
			if err != nil {
				t.Fatalf("metrics via %s after reconfigure: %v", id, err)
			}
			assertBitIdentical(t, scores, p.want, "via "+id+" after reconfigure")
		}
	}
	if n := tc.reg.Counter("service/metric_computes").Value(); n != 0 {
		t.Fatalf("reconfigure cost %d recomputes, want 0 (handoff moved the cached results)", n)
	}
}

// TestClusterDrain: draining a member must evict it from routing on
// the announce (no probe round trip), pre-copy its owned keys to the
// member inheriting them, answer its external refusals with a backlog
// -scaled Retry-After, and leave the survivors serving every answer
// bit-identically with zero failed requests and zero recomputes.
func TestClusterDrain(t *testing.T) {
	resetFaults(t)
	tc := newTestCluster(t, 3, nil)
	a, b, want := tc.warmPair(51, 52)
	owners, nonOwner := tc.pairRoles(a, b)
	tc.waitReplicated(a, b)
	tc.waitPairCached(a, b)

	victim := owners[0]
	resp, err := http.Post(tc.urls[victim]+"/v1/cluster/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain admit = HTTP %d, want 202", resp.StatusCode)
	}

	// The draining node has left routing: its external API refuses
	// with a Retry-After scaled to the remaining handoff backlog.
	hresp, err := http.Get(tc.urls[victim] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining node healthz = %d, want 503", hresp.StatusCode)
	}
	if ra := hresp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("draining 503 carries no Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("draining Retry-After = %q, want a positive integer", ra)
	}

	// Peers evict the drained member on the announce — faster than
	// probe-driven detection, and probes (which see the gated healthz)
	// keep it evicted.
	for _, id := range tc.ids {
		if id == victim {
			continue
		}
		id := id
		waitFor(t, 2*time.Second, "eviction of "+victim+" on "+id, func() bool {
			return tc.nodes[id].table.IsDown(victim)
		})
	}

	// The pre-copy lands the victim's owned keys on the member that
	// inherits them (3 members, replication 2: the former non-owner).
	waitFor(t, 3*time.Second, "handoff of the cached pair to "+nonOwner, func() bool {
		return hasCachedPair(tc.svcs[nonOwner], a, b)
	})
	waitFor(t, 3*time.Second, "drain handoff completion", func() bool {
		st := tc.nodes[victim].Status()
		return st.State == "draining" && !st.Handoff.Active && st.Handoff.Sent >= 1
	})

	// Survivors answer bit-identically, zero failures, zero recomputes.
	tc.reg.Reset()
	for _, id := range tc.ids {
		if id == victim {
			continue
		}
		scores, _, err := tc.metrics(id, a, b, nil, nil)
		if err != nil {
			t.Fatalf("metrics via %s during drain: %v", id, err)
		}
		assertBitIdentical(t, scores, want, "via "+id+" during drain")
	}
	if n := tc.reg.Counter("service/metric_computes").Value(); n != 0 {
		t.Fatalf("drain cost %d recomputes, want 0", n)
	}
	assertNoUnownedKey(t, tc, []string{a, b, ring.PairKey(a, b)})

	// The drained member keeps answering peer endpoints while its
	// external API refuses.
	sresp, err := http.Get(tc.urls[victim] + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("draining node peer status = HTTP %d, want 200", sresp.StatusCode)
	}

	// Drain is idempotent.
	if err := tc.nodes[victim].StartDrain(); err != nil {
		t.Fatalf("re-drain: %v", err)
	}
}

// TestClusterReconfigureExactlyOnce: the dedup machinery must survive
// a table replacement — an epoch bump keeps the pre-change cache
// (zero recomputes for warmed pairs) and a post-change fan-in still
// costs the cluster exactly one compute and one peer fill.
func TestClusterReconfigureExactlyOnce(t *testing.T) {
	resetFaults(t)
	tc := newTestCluster(t, 3, nil)
	a, b, _ := tc.warmPair(61, 62)
	tc.waitPairCached(a, b)

	// An epoch bump with unchanged members: the degenerate reconfigure
	// (no key moves), isolating the table swap itself.
	req := client.ReconfigureRequest{Epoch: 2, Peers: tc.allPeers()}
	tc.proposeAll(req, tc.ids...)
	tc.waitMembershipAt(2, tc.ids...)

	// The pre-reconfigure cache survives the swap.
	tc.reg.Reset()
	for _, id := range tc.ids {
		if _, _, err := tc.metrics(id, a, b, nil, nil); err != nil {
			t.Fatalf("metrics via %s after epoch bump: %v", id, err)
		}
	}
	if n := tc.reg.Counter("service/metric_computes").Value(); n != 0 {
		t.Fatalf("cached pair recomputed %d times after reconfigure, want 0", n)
	}

	// A fresh pair fanned in through a non-owner under the new epoch:
	// exactly one compute and one peer fill cluster-wide.
	c := tc.submit(tc.ids[0], testAIG(t, 63))
	d := tc.submit(tc.ids[0], testAIG(t, 64))
	_, nonOwner := tc.pairRoles(c, d)
	tc.reg.Reset()
	const fanIn = 12
	var wg sync.WaitGroup
	errs := make(chan error, fanIn)
	for i := 0; i < fanIn; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := tc.metrics(nonOwner, c, d, []string{"VEO"}, nil); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := tc.reg.Counter("service/metric_computes").Value(); n != 1 {
		t.Fatalf("fan-in after reconfigure computed %d times, want exactly 1", n)
	}
	if n := tc.reg.Counter("cluster/fills").Value(); n != 1 {
		t.Fatalf("fan-in after reconfigure cost %d peer fills, want exactly 1", n)
	}
}
