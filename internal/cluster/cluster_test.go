package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aiger"
	"repro/internal/cluster/ring"
	"repro/internal/service"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
	"repro/internal/tt"
)

// testAIG synthesizes a deterministic small AIG (distinct per seed)
// and returns its AIGER ASCII encoding.
func testAIG(t *testing.T, seed int64) []byte {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	g := synth.SynthSOP([]tt.TT{tt.Random(6, r)})
	var b bytes.Buffer
	if err := aiger.WriteASCII(&b, g); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// partitionTransport injects network partitions: a blocked host fails
// every round trip immediately, like a dropped route.
type partitionTransport struct {
	mu      sync.Mutex
	blocked map[string]bool
	base    http.RoundTripper
}

func (p *partitionTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	p.mu.Lock()
	blocked := p.blocked[r.URL.Host]
	p.mu.Unlock()
	if blocked {
		return nil, fmt.Errorf("injected partition to %s", r.URL.Host)
	}
	return p.base.RoundTrip(r)
}

func (p *partitionTransport) set(host string, blocked bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.blocked[host] = blocked
}

// swapHandler lets the fixture create HTTP servers (to learn their
// URLs) before the nodes that will serve on them exist.
type swapHandler struct{ h atomic.Pointer[http.Handler] }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := s.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	http.Error(w, "booting", http.StatusServiceUnavailable)
}

// deadHandler simulates a killed process: the connection is torn down
// without a response.
var deadHandler http.Handler = http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			_ = conn.Close()
			return
		}
	}
	panic("dead")
})

type testCluster struct {
	t       *testing.T
	ids     []string
	urls    map[string]string
	hosts   map[string]string
	svcs    map[string]*service.Server
	nodes   map[string]*Node
	swaps   map[string]*swapHandler
	trans   *partitionTransport
	reg     *telemetry.Registry
	httpCli *http.Client
}

// newTestCluster boots an n-node in-process cluster with fast health
// timing. All nodes share one telemetry registry (the global one), so
// cluster-total counters are direct assertions.
func newTestCluster(t *testing.T, n int, tweak func(*Config)) *testCluster {
	t.Helper()
	reg := telemetry.Enable()
	reg.Reset()
	tc := &testCluster{
		t:     t,
		urls:  make(map[string]string),
		hosts: make(map[string]string),
		svcs:  make(map[string]*service.Server),
		nodes: make(map[string]*Node),
		swaps: make(map[string]*swapHandler),
		trans: &partitionTransport{blocked: make(map[string]bool), base: http.DefaultTransport},
		reg:   reg,
	}
	tc.httpCli = &http.Client{Transport: tc.trans}
	peers := make(map[string]string, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%d", i+1)
		tc.ids = append(tc.ids, id)
		sw := &swapHandler{}
		ts := httptest.NewServer(sw)
		t.Cleanup(ts.Close)
		tc.swaps[id] = sw
		tc.urls[id] = ts.URL
		tc.hosts[id] = ts.Listener.Addr().String()
		peers[id] = ts.URL
	}
	for _, id := range tc.ids {
		svc := service.New(service.Config{Workers: 2, QueueDepth: 16})
		cfg := Config{
			NodeID:             id,
			Peers:              peers,
			ProbeInterval:      25 * time.Millisecond,
			ProbeTimeout:       250 * time.Millisecond,
			FailureThreshold:   2,
			PeerAttemptTimeout: time.Second,
			PeerMaxAttempts:    1,
			HTTPClient:         tc.httpCli,
		}
		if tweak != nil {
			tweak(&cfg)
		}
		node, err := New(svc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		h := node.Handler()
		tc.swaps[id].h.Store(&h)
		tc.svcs[id] = svc
		tc.nodes[id] = node
		t.Cleanup(func() {
			node.Close()
			svc.Close()
		})
	}
	return tc
}

// submit uploads an AIGER payload through one node's external API.
func (tc *testCluster) submit(id string, aiger []byte) string {
	tc.t.Helper()
	resp, err := http.Post(tc.urls[id]+"/v1/aigs", "application/octet-stream", bytes.NewReader(aiger))
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	var v service.AIGView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil || resp.StatusCode != http.StatusOK {
		tc.t.Fatalf("submit via %s: status %d, err %v", id, resp.StatusCode, err)
	}
	return v.Fingerprint
}

// metrics scores a pair through one node's external API, returning the
// scores and the response headers.
func (tc *testCluster) metrics(id, a, b string, names []string, hdr http.Header) (map[string]float64, http.Header, error) {
	tc.t.Helper()
	body, _ := json.Marshal(map[string]any{"a": a, "b": b, "metrics": names})
	req, err := http.NewRequest(http.MethodPost, tc.urls[id]+"/v1/metrics", bytes.NewReader(body))
	if err != nil {
		tc.t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	var out struct {
		Scores map[string]float64 `json:"scores"`
		Error  string             `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, resp.Header, fmt.Errorf("decoding: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp.Header, fmt.Errorf("HTTP %d: %s", resp.StatusCode, out.Error)
	}
	return out.Scores, resp.Header, nil
}

// pairRoles returns the static owners of the pair and one non-owner.
func (tc *testCluster) pairRoles(a, b string) (owners []string, nonOwner string) {
	tc.t.Helper()
	anyNode := tc.nodes[tc.ids[0]]
	owners = anyNode.table.Ring().Owners(ring.PairKey(a, b))
	inOwners := make(map[string]bool)
	for _, id := range owners {
		inOwners[id] = true
	}
	for _, id := range tc.ids {
		if !inOwners[id] {
			return owners, id
		}
	}
	tc.t.Fatal("no non-owner in cluster")
	return nil, ""
}

// singleNodeScores computes the reference answer on a fresh standalone
// daemon — the bit-identity baseline every cluster answer must match.
func singleNodeScores(t *testing.T, aigA, aigB []byte, names []string) map[string]float64 {
	t.Helper()
	svc := service.New(service.Config{Workers: 2})
	defer svc.Close()
	va, err := svc.InternAIGER(aigA)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := svc.InternAIGER(aigB)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := svc.ScorePairLocal(context.Background(), va.Fingerprint, vb.Fingerprint, names)
	if err != nil {
		t.Fatal(err)
	}
	return scores
}

// assertBitIdentical compares two score maps at the float64 bit level.
func assertBitIdentical(t *testing.T, got, want map[string]float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: metric sets diverged: got %d, want %d", label, len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok || math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("%s: %s = %v (%#x), want %v (%#x)",
				label, name, g, math.Float64bits(g), w, math.Float64bits(w))
		}
	}
}

// TestClusterBitIdenticalAnswers: every node of a 3-node cluster must
// answer a pair request with scores bit-identical to a standalone
// daemon — through the owner path, the peer-fill path, and the cache
// path alike. This is the invariant that makes routing, replication,
// and failover sound.
func TestClusterBitIdenticalAnswers(t *testing.T) {
	aigA, aigB := testAIG(t, 1), testAIG(t, 2)
	want := singleNodeScores(t, aigA, aigB, nil)

	tc := newTestCluster(t, 3, nil)
	a := tc.submit(tc.ids[0], aigA)
	b := tc.submit(tc.ids[0], aigB)
	for _, id := range tc.ids {
		scores, _, err := tc.metrics(id, a, b, nil, nil)
		if err != nil {
			t.Fatalf("metrics via %s: %v", id, err)
		}
		assertBitIdentical(t, scores, want, "via "+id)
	}
}

// TestClusterNoDoubleCompute: concurrent fan-in of one pair through a
// non-owner must cost the cluster exactly one metric computation (the
// node-level fill singleflight collapses the fan-in to one peer round
// trip; the owner's own singleflight collapses concurrent fills to one
// compute) — the cluster total is directly observable because every
// in-process node shares the global telemetry registry.
func TestClusterNoDoubleCompute(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	a := tc.submit(tc.ids[0], testAIG(t, 3))
	b := tc.submit(tc.ids[0], testAIG(t, 4))
	_, nonOwner := tc.pairRoles(a, b)

	tc.reg.Reset()
	const fanIn = 16
	var wg sync.WaitGroup
	errs := make(chan error, fanIn)
	for i := 0; i < fanIn; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := tc.metrics(nonOwner, a, b, []string{"VEO"}, nil); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := tc.reg.Counter("service/metric_computes").Value(); n != 1 {
		t.Fatalf("cluster computed the metric %d times under fan-in, want exactly 1", n)
	}
	if n := tc.reg.Counter("cluster/fills").Value(); n != 1 {
		t.Fatalf("fan-in cost %d peer fills, want exactly 1 (singleflight)", n)
	}
}

// TestClusterTraceStitching: a request entering through a non-owner
// and filled from the owner must form ONE trace: the caller's trace ID
// is echoed back, and the span tree contains both the entry node's
// request span and the owner's peer_request span.
func TestClusterTraceStitching(t *testing.T) {
	store := trace.NewStore(trace.StoreConfig{})
	trace.SetCollector(store)
	defer trace.SetCollector(nil)

	tc := newTestCluster(t, 3, nil)
	a := tc.submit(tc.ids[0], testAIG(t, 5))
	b := tc.submit(tc.ids[0], testAIG(t, 6))
	_, nonOwner := tc.pairRoles(a, b)

	const tid = "11223344556677889900aabbccddeeff"
	hdr := http.Header{}
	hdr.Set("traceparent", "00-"+tid+"-1122334455667788-01")
	_, respHdr, err := tc.metrics(nonOwner, a, b, []string{"VEO"}, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if got := respHdr.Get(trace.TraceIDHeader); got != tid {
		t.Fatalf("entry node echoed trace ID %q, want %q", got, tid)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		v, ok := store.Get(tid)
		if ok {
			var haveEntry, havePeer bool
			for _, sp := range v.Spans {
				switch sp.Name {
				case "service/request":
					haveEntry = true
				case "cluster/peer_request":
					havePeer = true
				}
			}
			if haveEntry && havePeer {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("trace %s never stitched entry+peer spans: entry=%v peer=%v (%d spans)",
					tid, haveEntry, havePeer, len(v.Spans))
			}
		} else if time.Now().After(deadline) {
			t.Fatalf("trace %s never reached the collector", tid)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterReplicationConverges: an AIG submitted through any node
// is replicated to its fingerprint's ring owners without any request
// asking for it.
func TestClusterReplicationConverges(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	fp := tc.submit(tc.ids[0], testAIG(t, 7))
	owners := tc.nodes[tc.ids[0]].table.Ring().Owners(fp)
	deadline := time.Now().Add(3 * time.Second)
	for {
		done := true
		for _, id := range owners {
			if !tc.svcs[id].HasAIG(fp) {
				done = false
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("owners %v never converged on %s", owners, fp)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
