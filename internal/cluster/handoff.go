package cluster

import (
	"context"
	"sync/atomic"

	"repro/internal/cluster/ring"
	"repro/internal/faultinject"
	"repro/internal/service/client"
	"repro/internal/telemetry"
)

// Fault points of the membership engine, one instrumentation site each.
const (
	// PointHandoffAIG and PointHandoffResult fail individual handoff
	// transfers — the kill-source-mid-handoff and torn-stream chaos
	// scenarios.
	PointHandoffAIG    = "cluster/handoff_aig"
	PointHandoffResult = "cluster/handoff_result"
	// PointEpochInstall fails the table install after a successful
	// handoff — the partition-during-epoch-install chaos scenario: the
	// keys were streamed but this node keeps routing by the old ring
	// until anti-entropy (announce / 409 repair) converges it.
	PointEpochInstall = "cluster/epoch_install"
)

// handoffKeysPerSecond is the pacing estimate behind drain-mode
// Retry-After hints: how many key transfers a node is assumed to
// complete per second. Deliberately conservative — a hint that is too
// high makes refused clients hammer a still-busy node.
const handoffKeysPerSecond = 64

type handoffKind int

const (
	handoffAIG handoffKind = iota
	handoffResult
)

// handoffItem is one key that must reach new owners before a
// membership change completes.
type handoffItem struct {
	kind    handoffKind
	key     string
	targets []string
	put     func(ctx context.Context, c *client.Client) error
}

// handoffProgress tracks the current (or, once inactive, the last)
// handoff run. Counters are atomics so Status can read them while the
// run is streaming.
type handoffProgress struct {
	active              atomic.Bool
	total, sent, failed atomic.Int64
}

func (p *handoffProgress) begin(total int) {
	p.total.Store(int64(total))
	p.sent.Store(0)
	p.failed.Store(0)
	p.active.Store(true)
}

func (p *handoffProgress) snapshot() client.HandoffProgress {
	return client.HandoffProgress{
		Active: p.active.Load(),
		Total:  p.total.Load(),
		Sent:   p.sent.Load(),
		Failed: p.failed.Load(),
	}
}

// drainRetrySeconds estimates how long a refused client should wait
// while this node drains: the remaining handoff backlog at the assumed
// transfer rate. Once the handoff is done (or none is running) the
// successors already hold everything — retry (elsewhere) immediately.
func (n *Node) drainRetrySeconds() int {
	const capSeconds = 30
	if !n.handoff.active.Load() {
		return 1
	}
	remaining := n.handoff.total.Load() - n.handoff.sent.Load()
	if remaining < 0 {
		remaining = 0
	}
	secs := 1 + int(remaining)/handoffKeysPerSecond
	if secs > capSeconds {
		secs = capSeconds
	}
	return secs
}

// downSet snapshots the health exclusions as a plain map for plan
// building.
func (n *Node) downSet() map[string]bool {
	out := make(map[string]bool)
	for _, id := range n.table.Down() {
		out[id] = true
	}
	return out
}

// primaryAliveSender reports whether this node is the one member
// responsible for streaming key during a reconfiguration: the first
// alive owner under the old ring. Every old member runs the same plan
// over the same ring, so exactly one alive node streams each key —
// no duplicate transfers, and a dead primary's keys are covered by the
// next replica.
func primaryAliveSender(self string, r *ring.Ring, key string, down map[string]bool) bool {
	for _, id := range r.Owners(key) {
		if down[id] {
			continue
		}
		return id == self
	}
	return false
}

// handoffPlanReconfigure enumerates what this node must stream for a
// prev→next membership change: for every locally held key it is the
// primary alive sender of, the owners gained under next
// (ring.MovedOwners — ~1/N of the key space) plus, for members listed
// as Joining, every key they own under next regardless of the diff
// (a rejoining member's ring positions are unchanged but its stores
// are empty).
func handoffPlanReconfigure(n *Node, prev, next *ring.Ring, req client.ReconfigureRequest) []handoffItem {
	down := n.downSet()
	joining := make(map[string]bool, len(req.Joining))
	for _, id := range req.Joining {
		joining[id] = true
	}
	targetsFor := func(key string) []string {
		moved := ring.MovedOwners(prev, next, key)
		seen := make(map[string]bool, len(moved))
		var out []string
		for _, id := range moved {
			if id != n.cfg.NodeID && !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		if len(joining) > 0 {
			for _, id := range next.Owners(key) {
				if joining[id] && id != n.cfg.NodeID && !seen[id] {
					seen[id] = true
					out = append(out, id)
				}
			}
		}
		return out
	}
	var items []handoffItem
	for _, fp := range n.svc.StoredFingerprints() {
		if !primaryAliveSender(n.cfg.NodeID, prev, fp, down) {
			continue
		}
		targets := targetsFor(fp)
		if len(targets) == 0 {
			continue
		}
		payload, err := n.svc.AIGERFor(fp)
		if err != nil {
			continue // evicted since enumeration; nothing to stream
		}
		items = append(items, handoffItem{
			kind: handoffAIG, key: fp, targets: targets,
			put: func(ctx context.Context, c *client.Client) error {
				_, err := c.ClusterPutAIG(ctx, payload)
				return err
			},
		})
	}
	for _, pr := range n.svc.CachedPairResults() {
		key := ring.PairKey(pr.A, pr.B)
		if !primaryAliveSender(n.cfg.NodeID, prev, key, down) {
			continue
		}
		targets := targetsFor(key)
		if len(targets) == 0 {
			continue
		}
		pr := pr
		items = append(items, handoffItem{
			kind: handoffResult, key: key, targets: targets,
			put: func(ctx context.Context, c *client.Client) error {
				return c.ClusterPutResult(ctx, pr.A, pr.B, pr.Scores)
			},
		})
	}
	return items
}

// handoffPlanDrain enumerates a departing node's transfers: every
// locally held key it owns goes to the member that inherits the
// ownership slot once this node is excluded from the ring walk — the
// owners-alive-without-self set minus the normal owner set.
func handoffPlanDrain(n *Node, cur *ring.Ring) []handoffItem {
	down := n.downSet()
	down[n.cfg.NodeID] = true
	targetsFor := func(key string) []string {
		owners := cur.Owners(key)
		owned := false
		was := make(map[string]bool, len(owners))
		for _, id := range owners {
			was[id] = true
			if id == n.cfg.NodeID {
				owned = true
			}
		}
		if !owned {
			return nil
		}
		var out []string
		for _, id := range cur.OwnersAlive(key, down) {
			if !was[id] {
				out = append(out, id)
			}
		}
		return out
	}
	var items []handoffItem
	for _, fp := range n.svc.StoredFingerprints() {
		targets := targetsFor(fp)
		if len(targets) == 0 {
			continue
		}
		payload, err := n.svc.AIGERFor(fp)
		if err != nil {
			continue
		}
		items = append(items, handoffItem{
			kind: handoffAIG, key: fp, targets: targets,
			put: func(ctx context.Context, c *client.Client) error {
				_, err := c.ClusterPutAIG(ctx, payload)
				return err
			},
		})
	}
	for _, pr := range n.svc.CachedPairResults() {
		key := ring.PairKey(pr.A, pr.B)
		targets := targetsFor(key)
		if len(targets) == 0 {
			continue
		}
		pr := pr
		items = append(items, handoffItem{
			kind: handoffResult, key: key, targets: targets,
			put: func(ctx context.Context, c *client.Client) error {
				return c.ClusterPutResult(ctx, pr.A, pr.B, pr.Scores)
			},
		})
	}
	return items
}

// runHandoff streams a plan. urls must resolve every target (it may
// include members not yet in the view — a joining node). In
// abortOnError mode (reconfigure) the first failed transfer aborts the
// run: installing the new ring anyway would hand ownership to nodes
// that never got the keys. In best-effort mode (drain) failures are
// counted and skipped: the successor recomputes bit-identically on
// demand, the copy is an optimization.
func (n *Node) runHandoff(ctx context.Context, items []handoffItem, urls map[string]string, abortOnError bool) error {
	n.handoff.begin(len(items))
	defer n.handoff.active.Store(false)
	extra := make(map[string]*client.Client)
	for _, it := range items {
		if err := ctx.Err(); err != nil {
			n.handoff.failed.Add(1)
			return err
		}
		var ferr error
		if it.kind == handoffAIG {
			ferr = faultinject.HitCtx(ctx, PointHandoffAIG)
		} else {
			ferr = faultinject.HitCtx(ctx, PointHandoffResult)
		}
		itemErr := ferr
		if itemErr == nil {
			for _, id := range it.targets {
				c, err := n.handoffClient(extra, urls, id)
				if err != nil {
					itemErr = err
					break
				}
				if err := it.put(ctx, c); err != nil {
					itemErr = err
					break
				}
			}
		}
		if itemErr != nil {
			n.handoff.failed.Add(1)
			telemetry.Add("cluster/handoff_failures", 1)
			if abortOnError {
				return itemErr
			}
			continue
		}
		n.handoff.sent.Add(1)
		telemetry.Add("cluster/handoff_keys", 1)
	}
	return nil
}

// handoffClient resolves a transfer target: the standing peer client
// when the target is already in the view, otherwise an ephemeral
// client built from the proposed membership (a joining node is a
// target before it is a member).
func (n *Node) handoffClient(extra map[string]*client.Client, urls map[string]string, id string) (*client.Client, error) {
	if c := n.view().peers[id]; c != nil {
		return c, nil
	}
	if c := extra[id]; c != nil {
		return c, nil
	}
	c, err := client.New(client.Config{
		BaseURL:        urls[id],
		HTTPClient:     n.cfg.HTTPClient,
		MaxAttempts:    n.cfg.PeerMaxAttempts,
		AttemptTimeout: n.cfg.PeerAttemptTimeout,
		BaseBackoff:    peerBaseBackoff,
		MaxBackoff:     peerMaxBackoff,
		Headers:        n.stampEpoch,
	})
	if err != nil {
		return nil, err
	}
	extra[id] = c
	return c, nil
}

// installEpoch is the commit point of a reconfiguration: the handoff
// is complete, swap the routing table. The fault point simulates a
// node partitioned away exactly here — keys streamed, table not
// installed — which anti-entropy must repair.
func (n *Node) installEpoch(epoch uint64, urls map[string]string) error {
	if err := faultinject.HitCtx(n.baseCtx, PointEpochInstall); err != nil {
		telemetry.Add("cluster/epoch_install_failures", 1)
		return err
	}
	return n.installMembership(epoch, urls)
}
