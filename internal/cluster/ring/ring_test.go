package ring

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("n%d", i+1)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0, 0); err == nil {
		t.Fatal("empty member list must be rejected")
	}
	if _, err := New([]string{"a", ""}, 0, 0); err == nil {
		t.Fatal("empty member ID must be rejected")
	}
	r, err := New([]string{"b", "a", "b"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Members(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("members not sorted/deduplicated: %v", got)
	}
}

// TestOwnersContract pins the basic lookup contract: R distinct owners,
// deterministic across builds and member-list orderings, and identical
// for the canonicalized pair key regardless of operand order.
func TestOwnersContract(t *testing.T) {
	ms := members(5)
	r1, err := New(ms, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []string{"n4", "n2", "n5", "n1", "n3"}
	r2, err := New(shuffled, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("fp-%d", i)
		o1, o2 := r1.Owners(key), r2.Owners(key)
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("owner order depends on member-list order: %v vs %v", o1, o2)
		}
		if len(o1) != 3 {
			t.Fatalf("want 3 owners, got %v", o1)
		}
		seen := map[string]bool{}
		for _, m := range o1 {
			if seen[m] {
				t.Fatalf("duplicate owner in %v", o1)
			}
			seen[m] = true
		}
	}
	if PairKey("b", "a") != PairKey("a", "b") {
		t.Fatal("PairKey must canonicalize operand order")
	}
	if r1.Owner(PairKey("x", "y")) != r1.Owners(PairKey("y", "x"))[0] {
		t.Fatal("pair owner must not depend on operand order")
	}
}

// TestRingStability is the consistent-hashing property: growing the
// cluster by one node may move only ~1/(N+1) of the keys' primary
// owners, never reshuffle the space. The table pins the bound across
// cluster sizes.
func TestRingStability(t *testing.T) {
	const keys = 10000
	cases := []struct {
		name   string
		before int
	}{
		{"3_to_4", 3},
		{"5_to_6", 5},
		{"10_to_11", 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			small, err := New(members(tc.before), 128, 1)
			if err != nil {
				t.Fatal(err)
			}
			big, err := New(members(tc.before+1), 128, 1)
			if err != nil {
				t.Fatal(err)
			}
			added := fmt.Sprintf("n%d", tc.before+1)
			moved := 0
			for i := 0; i < keys; i++ {
				key := fmt.Sprintf("fp-%08d", i)
				a, b := small.Owner(key), big.Owner(key)
				if a == b {
					continue
				}
				// Consistent hashing only ever moves keys TO the added
				// member; a key hopping between surviving members would
				// invalidate every replica's cache on scale-out.
				if b != added {
					t.Fatalf("key %q moved %s→%s, not to the added member", key, a, b)
				}
				moved++
			}
			expected := keys / (tc.before + 1)
			// 128 vnodes keeps the imbalance modest; allow 2× expected
			// movement before calling the placement broken.
			if moved > 2*expected {
				t.Fatalf("adding one node moved %d/%d keys; want ≤ ~1/N ≈ %d (bound %d)",
					moved, keys, expected, 2*expected)
			}
			if moved == 0 {
				t.Fatal("adding a node moved nothing: the new member takes no load")
			}
		})
	}
}

// TestBalance guards against gross virtual-node imbalance: no member
// of a 5-node ring may own more than twice its fair share of primary
// assignments.
func TestBalance(t *testing.T) {
	r, err := New(members(5), 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("fp-%08d", i))]++
	}
	fair := keys / 5
	for m, n := range counts {
		if n > 2*fair || n < fair/2 {
			t.Fatalf("member %s owns %d/%d keys (fair share %d): vnode spread is broken", m, n, keys, fair)
		}
	}
}

// TestTableFailover pins the eviction semantics: a down owner's ranges
// fail over to the next clockwise replicas, surviving assignments do
// not move, and re-admission restores exactly the original owners.
func TestTableFailover(t *testing.T) {
	tab, err := NewTable(members(5), 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := map[string][]string{}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("fp-%d", i)
		before[key] = tab.Owners(key)
	}
	if !tab.SetDown("n2", true) {
		t.Fatal("first eviction must report a change")
	}
	if tab.SetDown("n2", true) {
		t.Fatal("re-evicting must be a no-op")
	}
	if got := tab.Down(); !reflect.DeepEqual(got, []string{"n2"}) {
		t.Fatalf("Down() = %v", got)
	}
	for key, orig := range before {
		owners := tab.Owners(key)
		if len(owners) != 2 {
			t.Fatalf("key %q: want 2 alive owners, got %v", key, owners)
		}
		for _, m := range owners {
			if m == "n2" {
				t.Fatalf("key %q still routed to evicted member: %v", key, owners)
			}
		}
		// Surviving original owners keep their position (prefix order
		// preserved, fail-over members appended after them).
		want := 0
		for _, m := range orig {
			if m == "n2" {
				continue
			}
			if owners[want] != m {
				t.Fatalf("key %q: surviving owner %s displaced: before %v after %v", key, m, orig, owners)
			}
			want++
		}
	}
	if !tab.SetDown("n2", false) {
		t.Fatal("re-admission must report a change")
	}
	for key, orig := range before {
		if got := tab.Owners(key); !reflect.DeepEqual(got, orig) {
			t.Fatalf("key %q: re-admission did not restore ownership: before %v after %v", key, orig, got)
		}
	}
}

// TestTableConcurrentMembership is the -race stress: lookups stay
// consistent (non-empty owner sets, never a down member) while other
// goroutines continuously evict and re-admit nodes AND a third mutator
// replaces the whole table with alternating 8- and 9-member rings
// under increasing epochs — the epoch-install path a live
// reconfiguration exercises mid-churn.
func TestTableConcurrentMembership(t *testing.T) {
	tab, err := NewTable(members(8), 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	ring8, err := New(members(8), 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	ring9, err := New(members(9), 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	// Mutators: two goroutines toggling disjoint member subsets, so at
	// most 2 members are down at once and lookups always have owners.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := fmt.Sprintf("n%d", 1+4*g+r.Intn(4))
				tab.SetDown(m, true)
				tab.SetDown(m, false)
			}
		}(g)
	}
	// Epoch installer: swaps the entire ring (grow to 9, shrink to 8,
	// …) under strictly increasing epochs, concurrently with the
	// down-set churn above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rings := [2]*Ring{ring9, ring8}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			epoch := tab.Epoch()
			if !tab.Install(epoch+1, rings[i%2]) {
				errc <- fmt.Errorf("install of epoch %d refused", epoch+1)
				return
			}
			if tab.Install(epoch, rings[i%2]) {
				errc <- fmt.Errorf("stale install at epoch %d accepted", epoch)
				return
			}
		}
	}()
	// Lookups: owners must be non-empty and duplicate-free, and the
	// observed epoch must never move backwards, whatever the concurrent
	// membership churn and table replacement.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + g)))
			var lastEpoch uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				if e := tab.Epoch(); e < lastEpoch {
					errc <- fmt.Errorf("epoch moved backwards: %d after %d", e, lastEpoch)
					return
				} else {
					lastEpoch = e
				}
				key := fmt.Sprintf("fp-%d", r.Intn(4096))
				owners := tab.Owners(key)
				if len(owners) == 0 {
					errc <- fmt.Errorf("key %q: no alive owners under churn", key)
					return
				}
				seen := map[string]bool{}
				for _, m := range owners {
					if seen[m] {
						errc <- fmt.Errorf("key %q: duplicate owner %v", key, owners)
						return
					}
					seen[m] = true
				}
			}
		}(g)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestTableInstall pins the epoch semantics: installs must move the
// epoch strictly forward, a refused install leaves the table
// untouched, and down-marks for members absent from the new ring are
// dropped while surviving marks persist.
func TestTableInstall(t *testing.T) {
	tab, err := NewTable(members(3), 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Epoch(); got != 1 {
		t.Fatalf("fresh table epoch = %d, want 1", got)
	}
	r4, err := New(members(4), 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Install(1, r4) {
		t.Fatal("install at the current epoch must be refused")
	}
	tab.SetDown("n2", true)
	tab.SetDown("n3", true)
	if !tab.Install(2, r4) {
		t.Fatal("install at epoch 2 must succeed")
	}
	if got := tab.Epoch(); got != 2 {
		t.Fatalf("epoch after install = %d, want 2", got)
	}
	if got := tab.Ring().Members(); !reflect.DeepEqual(got, members(4)) {
		t.Fatalf("ring after install has members %v", got)
	}
	// Surviving down-marks persist across the install.
	if got := tab.Down(); !reflect.DeepEqual(got, []string{"n2", "n3"}) {
		t.Fatalf("down after grow install = %v, want [n2 n3]", got)
	}
	// Shrinking back to 2 members drops the mark of the removed n3, so
	// a later rejoin of the same ID starts clean.
	r2, err := New(members(2), 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Install(5, r2) {
		t.Fatal("install at epoch 5 must succeed")
	}
	if got := tab.Down(); !reflect.DeepEqual(got, []string{"n2"}) {
		t.Fatalf("down after shrink install = %v, want [n2]", got)
	}
	if tab.Install(4, r4) {
		t.Fatal("install below the current epoch must be refused")
	}
	if got := tab.Epoch(); got != 5 {
		t.Fatalf("refused install changed the epoch to %d", got)
	}
}

// TestMovedOwners pins the handoff planner's bound: growing a ring by
// one member means only ~1/(N+1) of the keys gain an owner, the gained
// owner is always the added member, and an unchanged ring moves
// nothing.
func TestMovedOwners(t *testing.T) {
	small, err := New(members(5), 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(members(6), 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 5000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("fp-%08d", i)
		gained := MovedOwners(small, big, key)
		if len(gained) == 0 {
			continue
		}
		if len(gained) != 1 || gained[0] != "n6" {
			t.Fatalf("key %q gained owners %v, want exactly the added member", key, gained)
		}
		moved++
		if MovedOwners(big, small, key) == nil {
			t.Fatalf("key %q moved on grow but not on the inverse shrink", key)
		}
	}
	if moved == 0 {
		t.Fatal("growing the ring moved nothing")
	}
	// Replication 2 on 5→6 members: each of the added member's vnode
	// arcs displaces one of two owners, so roughly 2/6 of keys gain it.
	// Allow 2× slack like TestRingStability.
	if bound := 2 * (2 * keys / 6); moved > bound {
		t.Fatalf("growing by one moved %d/%d keys, want ≤ %d", moved, keys, bound)
	}
	for i := 0; i < 100; i++ {
		if got := MovedOwners(small, small, fmt.Sprintf("fp-%d", i)); got != nil {
			t.Fatalf("identical rings moved %v", got)
		}
	}
}
