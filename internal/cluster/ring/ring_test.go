package ring

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("n%d", i+1)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0, 0); err == nil {
		t.Fatal("empty member list must be rejected")
	}
	if _, err := New([]string{"a", ""}, 0, 0); err == nil {
		t.Fatal("empty member ID must be rejected")
	}
	r, err := New([]string{"b", "a", "b"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Members(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("members not sorted/deduplicated: %v", got)
	}
}

// TestOwnersContract pins the basic lookup contract: R distinct owners,
// deterministic across builds and member-list orderings, and identical
// for the canonicalized pair key regardless of operand order.
func TestOwnersContract(t *testing.T) {
	ms := members(5)
	r1, err := New(ms, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []string{"n4", "n2", "n5", "n1", "n3"}
	r2, err := New(shuffled, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("fp-%d", i)
		o1, o2 := r1.Owners(key), r2.Owners(key)
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("owner order depends on member-list order: %v vs %v", o1, o2)
		}
		if len(o1) != 3 {
			t.Fatalf("want 3 owners, got %v", o1)
		}
		seen := map[string]bool{}
		for _, m := range o1 {
			if seen[m] {
				t.Fatalf("duplicate owner in %v", o1)
			}
			seen[m] = true
		}
	}
	if PairKey("b", "a") != PairKey("a", "b") {
		t.Fatal("PairKey must canonicalize operand order")
	}
	if r1.Owner(PairKey("x", "y")) != r1.Owners(PairKey("y", "x"))[0] {
		t.Fatal("pair owner must not depend on operand order")
	}
}

// TestRingStability is the consistent-hashing property: growing the
// cluster by one node may move only ~1/(N+1) of the keys' primary
// owners, never reshuffle the space. The table pins the bound across
// cluster sizes.
func TestRingStability(t *testing.T) {
	const keys = 10000
	cases := []struct {
		name   string
		before int
	}{
		{"3_to_4", 3},
		{"5_to_6", 5},
		{"10_to_11", 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			small, err := New(members(tc.before), 128, 1)
			if err != nil {
				t.Fatal(err)
			}
			big, err := New(members(tc.before+1), 128, 1)
			if err != nil {
				t.Fatal(err)
			}
			added := fmt.Sprintf("n%d", tc.before+1)
			moved := 0
			for i := 0; i < keys; i++ {
				key := fmt.Sprintf("fp-%08d", i)
				a, b := small.Owner(key), big.Owner(key)
				if a == b {
					continue
				}
				// Consistent hashing only ever moves keys TO the added
				// member; a key hopping between surviving members would
				// invalidate every replica's cache on scale-out.
				if b != added {
					t.Fatalf("key %q moved %s→%s, not to the added member", key, a, b)
				}
				moved++
			}
			expected := keys / (tc.before + 1)
			// 128 vnodes keeps the imbalance modest; allow 2× expected
			// movement before calling the placement broken.
			if moved > 2*expected {
				t.Fatalf("adding one node moved %d/%d keys; want ≤ ~1/N ≈ %d (bound %d)",
					moved, keys, expected, 2*expected)
			}
			if moved == 0 {
				t.Fatal("adding a node moved nothing: the new member takes no load")
			}
		})
	}
}

// TestBalance guards against gross virtual-node imbalance: no member
// of a 5-node ring may own more than twice its fair share of primary
// assignments.
func TestBalance(t *testing.T) {
	r, err := New(members(5), 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("fp-%08d", i))]++
	}
	fair := keys / 5
	for m, n := range counts {
		if n > 2*fair || n < fair/2 {
			t.Fatalf("member %s owns %d/%d keys (fair share %d): vnode spread is broken", m, n, keys, fair)
		}
	}
}

// TestTableFailover pins the eviction semantics: a down owner's ranges
// fail over to the next clockwise replicas, surviving assignments do
// not move, and re-admission restores exactly the original owners.
func TestTableFailover(t *testing.T) {
	tab, err := NewTable(members(5), 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := map[string][]string{}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("fp-%d", i)
		before[key] = tab.Owners(key)
	}
	if !tab.SetDown("n2", true) {
		t.Fatal("first eviction must report a change")
	}
	if tab.SetDown("n2", true) {
		t.Fatal("re-evicting must be a no-op")
	}
	if got := tab.Down(); !reflect.DeepEqual(got, []string{"n2"}) {
		t.Fatalf("Down() = %v", got)
	}
	for key, orig := range before {
		owners := tab.Owners(key)
		if len(owners) != 2 {
			t.Fatalf("key %q: want 2 alive owners, got %v", key, owners)
		}
		for _, m := range owners {
			if m == "n2" {
				t.Fatalf("key %q still routed to evicted member: %v", key, owners)
			}
		}
		// Surviving original owners keep their position (prefix order
		// preserved, fail-over members appended after them).
		want := 0
		for _, m := range orig {
			if m == "n2" {
				continue
			}
			if owners[want] != m {
				t.Fatalf("key %q: surviving owner %s displaced: before %v after %v", key, m, orig, owners)
			}
			want++
		}
	}
	if !tab.SetDown("n2", false) {
		t.Fatal("re-admission must report a change")
	}
	for key, orig := range before {
		if got := tab.Owners(key); !reflect.DeepEqual(got, orig) {
			t.Fatalf("key %q: re-admission did not restore ownership: before %v after %v", key, orig, got)
		}
	}
}

// TestTableConcurrentMembership is the -race stress: lookups stay
// consistent (non-empty owner sets, never a down member) while other
// goroutines continuously evict and re-admit nodes.
func TestTableConcurrentMembership(t *testing.T) {
	tab, err := NewTable(members(8), 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	// Mutators: two goroutines toggling disjoint member subsets, so at
	// most 2 members are down at once and lookups always have owners.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := fmt.Sprintf("n%d", 1+4*g+r.Intn(4))
				tab.SetDown(m, true)
				tab.SetDown(m, false)
			}
		}(g)
	}
	// Lookups: owners must be non-empty and duplicate-free whatever the
	// concurrent membership churn.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("fp-%d", r.Intn(4096))
				owners := tab.Owners(key)
				if len(owners) == 0 {
					errc <- fmt.Errorf("key %q: no alive owners under churn", key)
					return
				}
				seen := map[string]bool{}
				for _, m := range owners {
					if seen[m] {
						errc <- fmt.Errorf("key %q: duplicate owner %v", key, owners)
						return
					}
					seen[m] = true
				}
			}
		}(g)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
