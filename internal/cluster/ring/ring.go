// Package ring implements the consistent-hash routing table the aigd
// cluster and the client-side gateway share. Fingerprints (and pair
// cache keys derived from them) are hashed onto a 64-bit circle; every
// member contributes a fixed number of virtual nodes so load spreads
// evenly; a key's owners are the first R distinct members clockwise
// from the key's hash.
//
// The package is deliberately dependency-free: internal/cluster (the
// server side) and internal/service/client (the gateway side) both
// import it, and both must compute byte-identical placements from the
// same membership list — routing is a contract, not a heuristic.
//
// Two levels of API:
//
//   - Ring is an immutable snapshot over a fixed member list. Building
//     one is O(members·vnodes·log); lookups are O(log points). Adding a
//     member to the list moves only ~1/N of the key space (the
//     consistent-hashing property the tests pin).
//   - Table wraps an epoch-tagged Ring with a mutable down-set for
//     health-gated routing: evicting a member does not rebuild the
//     ring, it only swaps an atomic exclusion snapshot, so lookups stay
//     lock-free and a healed member resumes exactly the ranges it
//     owned before. Membership changes swap the whole ring under a
//     monotonically increasing epoch (Install), equally lock-free.
//
// MovedOwners is the handoff planner's primitive: given two rings it
// reports, per key, which members gained ownership — the exact set a
// planned membership change must stream that key to before the new
// table is installed.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Default sizing: 64 virtual nodes keeps the per-member load imbalance
// within a few percent for small static clusters; replication 2 means
// every key range survives one node failure.
const (
	DefaultVNodes      = 64
	DefaultReplication = 2
)

// point is one virtual node: a position on the hash circle owned by a
// member.
type point struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash snapshot over a member list.
// It is safe for concurrent use.
type Ring struct {
	points   []point  // sorted by hash
	members  []string // sorted, deduplicated
	replicas int
}

// hashKey positions a routing key on the circle: FNV-64a followed by a
// 64-bit avalanche finalizer. Raw FNV keeps short structured inputs
// ("n1#0", "n1#1", …) correlated enough to skew virtual-node placement
// badly (TestBalance catches a 7× spread without the mix); the
// finalizer diffuses every input bit across the word. Stdlib-only and
// stable across processes and architectures — placement is the routing
// contract between cluster nodes and gateways.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the murmur3 fmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// New builds a Ring over members with the given virtual-node count and
// replication factor (zeros take the defaults). Duplicate members are
// collapsed; order does not matter — two processes given the same set
// build byte-identical rings.
func New(members []string, vnodes, replicas int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if replicas <= 0 {
		replicas = DefaultReplication
	}
	uniq := make(map[string]bool, len(members))
	var sorted []string
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("ring: empty member ID")
		}
		if !uniq[m] {
			uniq[m] = true
			sorted = append(sorted, m)
		}
	}
	if len(sorted) == 0 {
		return nil, fmt.Errorf("ring: no members")
	}
	sort.Strings(sorted)
	r := &Ring{members: sorted, replicas: replicas}
	r.points = make([]point, 0, len(sorted)*vnodes)
	for _, m := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hashKey(m + "#" + strconv.Itoa(v)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by member so placement
		// stays deterministic across builds.
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Members returns the sorted member list (shared slice — do not
// mutate).
func (r *Ring) Members() []string { return r.members }

// Replication returns the ring's replication factor.
func (r *Ring) Replication() int { return r.replicas }

// Owners returns the key's owner members in preference order: the
// first R distinct members clockwise from the key's hash position.
// Fewer than R members means every member owns every key.
func (r *Ring) Owners(key string) []string {
	return r.ownersExcluding(key, nil)
}

// OwnersAlive is Owners restricted to members not in down: the
// failover view. With every owner down it returns an empty slice —
// callers decide whether to degrade (compute locally) or refuse.
func (r *Ring) OwnersAlive(key string, down map[string]bool) []string {
	return r.ownersExcluding(key, down)
}

func (r *Ring) ownersExcluding(key string, down map[string]bool) []string {
	want := r.replicas
	if n := len(r.members); want > n {
		want = n
	}
	out := make([]string, 0, want)
	seen := make(map[string]bool, want)
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points) && len(out) < want; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] || down[p.member] {
			continue
		}
		seen[p.member] = true
		out = append(out, p.member)
	}
	return out
}

// Owner returns the key's primary owner (first of Owners).
func (r *Ring) Owner(key string) string {
	return r.Owners(key)[0]
}

// PairKey is the canonical routing key for a pairwise result: the two
// fingerprints in sorted order. It matches the service result cache's
// operand canonicalization, so all metrics of one pair land on one
// owner — one peer round trip fills a whole pair.
func PairKey(fpA, fpB string) string {
	if fpA > fpB {
		fpA, fpB = fpB, fpA
	}
	return fpA + "|" + fpB
}

// MovedOwners returns the members that own key under next but not
// under prev: the receivers a planned membership change must stream
// the key to before installing next. By the consistent-hashing
// property, adding one member to an N-member ring yields a non-empty
// result for only ~1/N of the key space — the handoff volume bound.
func MovedOwners(prev, next *Ring, key string) []string {
	if prev == next {
		return nil
	}
	old := prev.Owners(key)
	was := make(map[string]bool, len(old))
	for _, m := range old {
		was[m] = true
	}
	var out []string
	for _, m := range next.Owners(key) {
		if !was[m] {
			out = append(out, m)
		}
	}
	return out
}

// tableState is one epoch's immutable routing view: the ring plus the
// membership epoch it was installed under.
type tableState struct {
	epoch uint64
	ring  *Ring
}

// Table is an epoch-tagged Ring plus a mutable health exclusion set.
// Lookups read atomic snapshots of both, so routing never takes a lock:
// eviction/re-admission and whole-table replacement (Install) are
// single pointer swaps — membership changes race-free against
// in-flight lookups (the -race stress test pins this).
type Table struct {
	state atomic.Pointer[tableState]

	mu   sync.Mutex // serializes writers to state and down
	down atomic.Pointer[map[string]bool]
}

// NewTable builds a Table at epoch 1 with every member initially
// alive.
func NewTable(members []string, vnodes, replicas int) (*Table, error) {
	return NewTableAt(members, vnodes, replicas, 1)
}

// NewTableAt builds a Table at an explicit starting epoch — the boot
// path of a node joining (or rejoining) a cluster that has already
// advanced past epoch 1.
func NewTableAt(members []string, vnodes, replicas int, epoch uint64) (*Table, error) {
	r, err := New(members, vnodes, replicas)
	if err != nil {
		return nil, err
	}
	t := &Table{}
	t.state.Store(&tableState{epoch: epoch, ring: r})
	empty := map[string]bool{}
	t.down.Store(&empty)
	return t, nil
}

// Ring returns the current immutable ring (the static placement view,
// health ignored).
func (t *Table) Ring() *Ring { return t.state.Load().ring }

// Epoch returns the membership epoch of the current ring.
func (t *Table) Epoch() uint64 { return t.state.Load().epoch }

// Install atomically replaces the routing table with a new ring under
// a strictly greater epoch. A stale or duplicate install (epoch not
// greater than the current one) is refused — epochs are the total
// order on membership, so the table can only move forward. Down-marks
// for members absent from the new ring are dropped so a later rejoin
// of the same ID starts clean.
func (t *Table) Install(epoch uint64, r *Ring) bool {
	if r == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if epoch <= t.state.Load().epoch {
		return false
	}
	keep := make(map[string]bool, len(r.members))
	for _, m := range r.members {
		keep[m] = true
	}
	cur := *t.down.Load()
	next := make(map[string]bool, len(cur))
	for m, d := range cur {
		if d && keep[m] {
			next[m] = true
		}
	}
	t.down.Store(&next)
	t.state.Store(&tableState{epoch: epoch, ring: r})
	return true
}

// SetDown marks a member down (evicted from routing) or up
// (re-admitted). It reports whether the state actually changed.
func (t *Table) SetDown(member string, down bool) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := *t.down.Load()
	if cur[member] == down {
		return false
	}
	next := make(map[string]bool, len(cur)+1)
	for m, d := range cur {
		if d {
			next[m] = true
		}
	}
	if down {
		next[member] = true
	} else {
		delete(next, member)
	}
	t.down.Store(&next)
	return true
}

// Down returns the sorted list of currently evicted members.
func (t *Table) Down() []string {
	cur := *t.down.Load()
	out := make([]string, 0, len(cur))
	for m := range cur {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// IsDown reports whether a member is currently evicted.
func (t *Table) IsDown(member string) bool {
	return (*t.down.Load())[member]
}

// Owners returns the key's owners with evicted members skipped: a down
// owner's ranges fail over to the next replicas clockwise. Empty means
// every candidate owner is down.
func (t *Table) Owners(key string) []string {
	return t.state.Load().ring.ownersExcluding(key, *t.down.Load())
}
