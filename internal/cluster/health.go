package cluster

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// Peer health has two inputs feeding one consecutive-failure counter
// per peer:
//
//   - the periodic prober below (raw /healthz probes, deliberately
//     bypassing the client's retry/breaker machinery so probe cadence
//     never depends on breaker cooldowns), which also folds in the
//     client's breaker state — an open breaker is the symptom of a
//     peer failing *real* traffic, and counts like a failed probe;
//   - inline outcomes from fill and replication calls (peerFail /
//     peerOK in cluster.go), so a peer dying under load is evicted
//     within FailureThreshold failed requests even if the next probe
//     tick is far away.
//
// Crossing FailureThreshold evicts the peer from the routing table
// (ring ownership is untouched — replicas serve its ranges); the first
// success re-admits it immediately. Both transitions are JSONL events.

// probeLoop drives the prober until Close.
func (n *Node) probeLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-n.baseCtx.Done():
			return
		case <-t.C:
			// The member list is re-read every tick, so a membership
			// change takes effect at the next round: removed peers
			// stop being probed, added peers start.
			for _, id := range n.view().peerIDs {
				n.probe(id)
			}
		}
	}
}

// probe checks one peer once: liveness endpoint plus breaker fold. The
// probe derives from the node-lifetime context, so a peer that stops
// answering mid-probe cannot delay Close past RPC cancellation.
func (n *Node) probe(id string) {
	v := n.view()
	c := v.peers[id]
	if c == nil {
		return // peer left between enumeration and probe
	}
	ctx, cancel := context.WithTimeout(n.baseCtx, n.cfg.ProbeTimeout)
	defer cancel()
	err := faultinject.HitCtx(ctx, PointProbe)
	if err == nil {
		err = c.Healthz(ctx)
	}
	if err == nil {
		if open := c.OpenBreakers(); len(open) > 0 {
			err = fmt.Errorf("open breakers: %v", open)
		}
	}
	if err != nil {
		if n.baseCtx.Err() != nil {
			return // probe aborted by Close, not by the peer
		}
		telemetry.Add(v.pm[id].probeFailures, 1)
		n.peerFail(id)
		return
	}
	n.peerOK(id)
}

// peerFail records one failed interaction with a peer; crossing the
// threshold evicts it from routing.
func (n *Node) peerFail(id string) {
	v := n.view()
	f := v.failures[id]
	if f == nil {
		return // peer already left the membership
	}
	c := f.Add(1)
	if int(c) < n.cfg.FailureThreshold {
		return
	}
	if n.table.SetDown(id, true) {
		telemetry.Add(v.pm[id].evictions, 1)
		telemetry.Add("cluster/peer_evictions", 1)
		n.logPeerEvent("peer_down", id, int(c))
	}
}

// peerOK records one successful interaction; a down peer is re-admitted
// immediately.
func (n *Node) peerOK(id string) {
	v := n.view()
	if f := v.failures[id]; f != nil {
		f.Store(0)
	}
	if n.table.SetDown(id, false) {
		if pm, ok := v.pm[id]; ok {
			telemetry.Add(pm.readmissions, 1)
		}
		telemetry.Add("cluster/peer_readmissions", 1)
		n.logPeerEvent("peer_up", id, 0)
	}
}

func (n *Node) logPeerEvent(event, id string, failures int) {
	if n.cfg.Events == nil {
		return
	}
	n.cfg.Events.Log(event, map[string]any{
		"node":     n.cfg.NodeID,
		"peer":     id,
		"failures": failures,
	})
}

// healthView is the GET /v1/cluster/health answer.
type healthView struct {
	Node        string         `json:"node"`
	State       string         `json:"state"`
	Epoch       uint64         `json:"epoch"`
	Members     []string       `json:"members"`
	Replication int            `json:"replication"`
	Down        []string       `json:"down"`
	Failures    map[string]int `json:"failures"`
}

func (n *Node) healthSnapshot() healthView {
	mv := n.view()
	v := healthView{
		Node:        n.cfg.NodeID,
		State:       n.State(),
		Epoch:       n.table.Epoch(),
		Members:     n.table.Ring().Members(),
		Replication: n.table.Ring().Replication(),
		Down:        n.table.Down(),
		Failures:    make(map[string]int, len(mv.peerIDs)),
	}
	if v.Down == nil {
		v.Down = []string{}
	}
	sort.Strings(v.Down)
	for _, id := range mv.peerIDs {
		if f := mv.failures[id]; f != nil {
			v.Failures[id] = int(f.Load())
		}
	}
	return v
}
