package cluster

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// Peer health has two inputs feeding one consecutive-failure counter
// per peer:
//
//   - the periodic prober below (raw /healthz probes, deliberately
//     bypassing the client's retry/breaker machinery so probe cadence
//     never depends on breaker cooldowns), which also folds in the
//     client's breaker state — an open breaker is the symptom of a
//     peer failing *real* traffic, and counts like a failed probe;
//   - inline outcomes from fill and replication calls (peerFail /
//     peerOK in cluster.go), so a peer dying under load is evicted
//     within FailureThreshold failed requests even if the next probe
//     tick is far away.
//
// Crossing FailureThreshold evicts the peer from the routing table
// (ring ownership is untouched — replicas serve its ranges); the first
// success re-admits it immediately. Both transitions are JSONL events.

// probeLoop drives the prober until Close.
func (n *Node) probeLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-n.baseCtx.Done():
			return
		case <-t.C:
			for _, id := range n.peerIDs {
				n.probe(id)
			}
		}
	}
}

// probe checks one peer once: liveness endpoint plus breaker fold. The
// probe derives from the node-lifetime context, so a peer that stops
// answering mid-probe cannot delay Close past RPC cancellation.
func (n *Node) probe(id string) {
	ctx, cancel := context.WithTimeout(n.baseCtx, n.cfg.ProbeTimeout)
	defer cancel()
	err := faultinject.HitCtx(ctx, PointProbe)
	if err == nil {
		err = n.peers[id].Healthz(ctx)
	}
	if err == nil {
		if open := n.peers[id].OpenBreakers(); len(open) > 0 {
			err = fmt.Errorf("open breakers: %v", open)
		}
	}
	if err != nil {
		if n.baseCtx.Err() != nil {
			return // probe aborted by Close, not by the peer
		}
		telemetry.Add(n.pm[id].probeFailures, 1)
		n.peerFail(id)
		return
	}
	n.peerOK(id)
}

// peerFail records one failed interaction with a peer; crossing the
// threshold evicts it from routing.
func (n *Node) peerFail(id string) {
	c := n.failures[id].Add(1)
	if int(c) < n.cfg.FailureThreshold {
		return
	}
	if n.table.SetDown(id, true) {
		telemetry.Add(n.pm[id].evictions, 1)
		telemetry.Add("cluster/peer_evictions", 1)
		n.logPeerEvent("peer_down", id, int(c))
	}
}

// peerOK records one successful interaction; a down peer is re-admitted
// immediately.
func (n *Node) peerOK(id string) {
	n.failures[id].Store(0)
	if n.table.SetDown(id, false) {
		telemetry.Add(n.pm[id].readmissions, 1)
		telemetry.Add("cluster/peer_readmissions", 1)
		n.logPeerEvent("peer_up", id, 0)
	}
}

func (n *Node) logPeerEvent(event, id string, failures int) {
	if n.cfg.Events == nil {
		return
	}
	n.cfg.Events.Log(event, map[string]any{
		"node":     n.cfg.NodeID,
		"peer":     id,
		"failures": failures,
	})
}

// healthView is the GET /v1/cluster/health answer.
type healthView struct {
	Node        string         `json:"node"`
	Members     []string       `json:"members"`
	Replication int            `json:"replication"`
	Down        []string       `json:"down"`
	Failures    map[string]int `json:"failures"`
}

func (n *Node) healthSnapshot() healthView {
	v := healthView{
		Node:        n.cfg.NodeID,
		Members:     n.table.Ring().Members(),
		Replication: n.table.Ring().Replication(),
		Down:        n.table.Down(),
		Failures:    make(map[string]int, len(n.peerIDs)),
	}
	if v.Down == nil {
		v.Down = []string{}
	}
	sort.Strings(v.Down)
	for _, id := range n.peerIDs {
		v.Failures[id] = int(n.failures[id].Load())
	}
	return v
}
