// Package cluster turns a set of aigd daemons into one logical
// scoring service with dynamic membership: every node starts from a
// seed peer list, a consistent-hash ring (internal/cluster/ring)
// assigns each fingerprint pair to R owner nodes, and the member list
// itself evolves under a monotonically increasing epoch (see
// membership.go for the reconfigure / drain / join machinery).
//
// The design leans entirely on one invariant from internal/service:
// scores are a pure function of (fingerprint pair, metric), because
// per-graph profiles are seeded from the structural fingerprint. That
// makes every cross-node data movement sound — a result computed on
// any node is bit-identical to what any other node would compute, so
// caches can be filled from peers, results can be replicated ahead of
// demand, and a dead owner's range can be served by a replica without
// any answer changing.
//
// Request flow for POST /v1/metrics on a node:
//
//   - the node is a static owner of the pair → compute locally (the
//     single-node path: cache, singleflight, bounded pool), then
//     replicate the result to the other owners asynchronously;
//   - otherwise → local cache, then peer fill from the first alive
//     owner (singleflight-deduped per pair so concurrent fan-in costs
//     one peer round trip), then — all owners unreachable — a degraded
//     local compute. The answer is always produced; health only moves
//     *where*.
//
// Within one epoch, ownership is static: per-peer health (periodic
// probes plus inline failure counting plus client breaker state) gates
// which owners are *asked*, never which owners *are*. A downed node
// keeps its ranges and re-enters them unchanged when probes re-admit
// it, so flapping health cannot migrate data. Data migrates only on an
// explicit epoch change, and then only after the moved keys were
// streamed to their new owners (handoff-before-install).
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster/ring"
	"repro/internal/faultinject"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// Fault points of the cluster layer, one instrumentation site each.
const (
	// PointFill guards the peer-fill fan-out: a fired fault skips the
	// owners entirely and forces the degraded local compute.
	PointFill = "cluster/fill"
	// PointFillReply wraps the fill response body on the owner —
	// ModeTornWrite serves a decodable-length prefix, exercising the
	// requester's failover on torn peer responses.
	PointFillReply = "cluster/fill_reply"
	// PointReplicateAIG and PointReplicateResult fail the async
	// replication fan-outs (kill-mid-replication chaos).
	PointReplicateAIG    = "cluster/replicate_aig"
	PointReplicateResult = "cluster/replicate_result"
	// PointProbe fails health probes, forcing eviction of a live peer.
	PointProbe = "cluster/probe"
)

// Config sizes a Node. NodeID and Peers are required; everything else
// has a production default.
type Config struct {
	// NodeID is this node's member name; it must be a key of Peers.
	NodeID string
	// Peers maps every member ID (this node included) to its base URL
	// — the seed membership. It must agree with the other members'
	// view at Epoch (ring placement depends only on the sorted ID
	// list); afterwards membership evolves through Reconfigure and
	// announces.
	Peers map[string]string
	// Epoch is the membership epoch Peers corresponds to (default 1).
	// A node rejoining a cluster that has moved past epoch 1 must boot
	// at the cluster's current epoch or it will refuse its peers'
	// traffic.
	Epoch uint64
	// Join marks this node as a fresh member entering an existing
	// cluster: it boots receiving-only (external API and healthz
	// answer 503) and activates when the first announce or peer RPC
	// arrives at its own epoch — proof that the old members installed
	// the ring that includes it, which happens only after their
	// handoff streamed this node's keys to it.
	Join bool
	// Replication is the number of owner nodes per key (default
	// ring.DefaultReplication); VNodes the virtual nodes per member
	// (default ring.DefaultVNodes). Must match cluster-wide.
	Replication int
	VNodes      int

	// ProbeInterval paces the health prober (default 500ms);
	// ProbeTimeout bounds one probe (default 1s). Worst-case failover
	// detection latency is FailureThreshold probe rounds.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailureThreshold consecutive failures (probe or inline) evict a
	// peer from routing (default 3).
	FailureThreshold int

	// PeerAttemptTimeout bounds each HTTP attempt against a peer
	// (default 2s) — a stalled peer costs one attempt, not the
	// caller's deadline. PeerMaxAttempts bounds tries per peer call
	// (default 2: the ring's replicas are the real retry budget).
	PeerAttemptTimeout time.Duration
	PeerMaxAttempts    int

	// ReplicationTimeout bounds one async replication fan-out
	// (default 10s).
	ReplicationTimeout time.Duration

	// Events, when set, receives peer_down/peer_up JSONL events.
	Events *telemetry.EventLogger
	// HTTPClient, when set, carries peer traffic (tests inject
	// partitionable transports); nil uses http.DefaultClient.
	HTTPClient *http.Client
}

// Peer client backoff pacing, shared by standing peers and ephemeral
// handoff targets.
const (
	peerBaseBackoff = 25 * time.Millisecond
	peerMaxBackoff  = 250 * time.Millisecond
)

func (c Config) withDefaults() Config {
	if c.Epoch == 0 {
		c.Epoch = 1
	}
	if c.Replication <= 0 {
		c.Replication = ring.DefaultReplication
	}
	if c.VNodes <= 0 {
		c.VNodes = ring.DefaultVNodes
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.PeerAttemptTimeout <= 0 {
		c.PeerAttemptTimeout = 2 * time.Second
	}
	if c.PeerMaxAttempts <= 0 {
		c.PeerMaxAttempts = 2
	}
	if c.ReplicationTimeout <= 0 {
		c.ReplicationTimeout = 10 * time.Second
	}
	return c
}

// Node is one cluster member wrapped around a service.Server. Create
// it with New (which installs the routing hooks into the server),
// mount Handler, and Close it before closing the server.
type Node struct {
	cfg   Config
	svc   *service.Server
	table *ring.Table

	// members is the current epoch's peer wiring (clients,
	// instruments, failure counters); memberMu serializes writers
	// (installMembership) — readers load the pointer lock-free.
	members  atomic.Pointer[memberView]
	memberMu sync.Mutex

	// state is the lifecycle state (active / joining / draining);
	// reconfiguring admits at most one membership operation at a time
	// (a CAS guard, not a mutex — the operation spans network I/O).
	state         atomic.Int32
	reconfiguring atomic.Bool
	handoff       handoffProgress

	fills fillGroup

	// baseCtx is the node-lifetime context: every background activity —
	// health probes, replication fan-outs — derives from it, so Close
	// (which cancels it) bounds all of them instead of waiting out their
	// individual timeouts.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	stopOnce   sync.Once
	wg         sync.WaitGroup
}

// New wires a Node around svc: it installs the cluster hooks (pair
// routing + intern replication) and starts the health prober. It must
// run before svc.Handler starts serving.
func New(svc *service.Server, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("cluster: Config.NodeID is required")
	}
	if _, ok := cfg.Peers[cfg.NodeID]; !ok {
		return nil, fmt.Errorf("cluster: NodeID %q is not in Peers", cfg.NodeID)
	}
	ids := make([]string, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		ids = append(ids, id)
	}
	table, err := ring.NewTableAt(ids, cfg.VNodes, cfg.Replication, cfg.Epoch)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:   cfg,
		svc:   svc,
		table: table,
	}
	if cfg.Join {
		n.state.Store(stateJoining)
	}
	//lint:ignore ctxflow the node base context is the member-lifetime root, canceled in Close — probes and replication derive from it
	n.baseCtx, n.baseCancel = context.WithCancel(context.Background())
	n.fills.calls = make(map[string]*fillCall)
	v, err := n.buildView(cfg.Peers, nil)
	if err != nil {
		return nil, err
	}
	n.members.Store(v)
	svc.SetClusterHooks(n.routePair, n.onIntern)
	svc.SetDrainRetryHint(n.drainRetrySeconds)
	n.wg.Add(1)
	go n.probeLoop()
	return n, nil
}

// stampEpoch writes this node's installed epoch onto an outgoing peer
// request — read at send time, so a client surviving a reconfiguration
// stamps the new epoch on its next call.
func (n *Node) stampEpoch(h http.Header) {
	h.Set(client.EpochHeader, strconv.FormatUint(n.table.Epoch(), 10))
}

// Close cancels the node-lifetime context — stopping the prober and
// aborting any in-flight replication fan-out — and waits for every
// background goroutine to exit. Shutdown latency is bounded by RPC
// cancellation, not by ReplicationTimeout.
func (n *Node) Close() {
	n.stopOnce.Do(n.baseCancel)
	n.wg.Wait()
}

// ownsKey reports whether this node is one of the key's static owners.
func (n *Node) ownsKey(owners []string) bool {
	for _, id := range owners {
		if id == n.cfg.NodeID {
			return true
		}
	}
	return false
}

// routePair is the PairRouter installed into the service: it resolves
// one pair-scores request cluster-wide. names is the canonical
// metric-name list (the service resolved it before routing).
func (n *Node) routePair(ctx context.Context, fpA, fpB string, names []string) (map[string]float64, error) {
	if err := n.ensureLocal(ctx, fpA); err != nil {
		return nil, err
	}
	if err := n.ensureLocal(ctx, fpB); err != nil {
		return nil, err
	}
	key := ring.PairKey(fpA, fpB)
	// Ownership is read from the static ring, never the health-gated
	// table: a down owner is still the owner, health only decides who
	// gets *asked* below.
	owners := n.table.Ring().Owners(key)
	if n.ownsKey(owners) {
		scores, err := n.svc.ScorePairLocal(ctx, fpA, fpB, names)
		if err == nil {
			n.replicateResult(ctx, fpA, fpB, scores, owners)
		}
		return scores, err
	}
	if scores, ok := n.svc.PairFromCache(ctx, fpA, fpB, names); ok {
		telemetry.Add("cluster/route_cache_hits", 1)
		return scores, nil
	}
	return n.fill(ctx, key, fpA, fpB, names)
}

// fillCall is one in-flight fill; followers wait on done.
type fillCall struct {
	done   chan struct{}
	scores map[string]float64
	err    error
}

// fillGroup deduplicates concurrent fills per (pair, metrics): under
// concurrent fan-in for one pair, the whole node issues one peer round
// trip, and — because the owner singleflights its own computation —
// the whole *cluster* computes each (pair, metric) once.
type fillGroup struct {
	mu    sync.Mutex
	calls map[string]*fillCall
}

func (n *Node) fill(ctx context.Context, key, fpA, fpB string, names []string) (map[string]float64, error) {
	fkey := key + "\x00" + fmt.Sprint(names)
	n.fills.mu.Lock()
	if c, ok := n.fills.calls[fkey]; ok {
		n.fills.mu.Unlock()
		telemetry.Add("cluster/fill_dedups", 1)
		select {
		case <-c.done:
			return c.scores, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := &fillCall{done: make(chan struct{})}
	n.fills.calls[fkey] = c
	n.fills.mu.Unlock()

	c.scores, c.err = n.fillLeader(ctx, key, fpA, fpB, names)
	n.fills.mu.Lock()
	delete(n.fills.calls, fkey)
	n.fills.mu.Unlock()
	close(c.done)
	return c.scores, c.err
}

// fillLeader does the actual peer-fill fan-out: ask each alive owner
// in ring order, inlining both AIGER payloads so an owner that missed
// replication can intern them and still answer; if every owner is
// unreachable, compute locally (degraded but correct — scores are
// location-independent).
func (n *Node) fillLeader(ctx context.Context, key, fpA, fpB string, names []string) (map[string]float64, error) {
	if err := faultinject.HitCtx(ctx, PointFill); err == nil {
		req := client.FillRequest{A: fpA, B: fpB, Metrics: names}
		// The service resolved the pair before routing, so both graphs
		// are in the local store; failing to encode them is a bug, not
		// a recoverable condition — send without payload and let the
		// owner answer from its own store if it can.
		req.AIGERA, _ = n.svc.AIGERFor(fpA)
		req.AIGERB, _ = n.svc.AIGERFor(fpB)
		v := n.view()
		for _, id := range n.table.Owners(key) { // alive owners only
			if id == n.cfg.NodeID {
				continue
			}
			c := v.peers[id]
			if c == nil {
				continue // owner left between lookup and view load
			}
			scores, err := c.ClusterFill(ctx, req)
			if err == nil {
				n.peerOK(id)
				n.svc.FillPairCache(fpA, fpB, scores)
				telemetry.Add(v.pm[id].fills, 1)
				telemetry.Add("cluster/fills", 1)
				return scores, nil
			}
			if ctx.Err() != nil {
				return nil, err
			}
			var se *client.StaleEpochError
			if errors.As(err, &se) {
				// The peer is healthy, just on a different epoch:
				// converge (adopt or push) instead of counting a
				// failure, and fall back to the degraded local path —
				// the answer is bit-identical anywhere.
				n.resolveEpochConflict(ctx, se)
				trace.AddEvent(ctx, "cluster_fill_epoch_conflict", trace.A("peer", id))
				continue
			}
			n.peerFail(id)
			telemetry.Add(v.pm[id].fillFailures, 1)
			telemetry.Add("cluster/fill_failures", 1)
			trace.AddEvent(ctx, "cluster_fill_failover", trace.A("peer", id))
		}
	}
	telemetry.Add("cluster/degraded_local_computes", 1)
	trace.AddEvent(ctx, "cluster_degraded_local")
	return n.svc.ScorePairLocal(ctx, fpA, fpB, names)
}

// replicateResult pushes a freshly computed result to the pair's other
// owners, asynchronously — the response never waits on replication,
// and a down peer is simply skipped (peer fill repairs it on demand).
func (n *Node) replicateResult(ctx context.Context, fpA, fpB string, scores map[string]float64, owners []string) {
	targets := n.aliveTargets(owners)
	if len(targets) == 0 {
		return
	}
	// Detach from the request's cancellation but keep its trace
	// identity: replication spans stitch to the originating request.
	// The fan-out stays bounded by the node lifetime — Close cancels it.
	rctx := context.WithoutCancel(ctx)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		rctx, cancel := context.WithTimeout(rctx, n.cfg.ReplicationTimeout)
		defer cancel()
		defer context.AfterFunc(n.baseCtx, cancel)()
		if err := faultinject.HitCtx(rctx, PointReplicateResult); err != nil {
			telemetry.Add("cluster/replication_failures", 1)
			return
		}
		v := n.view()
		for _, id := range targets {
			c := v.peers[id]
			if c == nil {
				continue
			}
			if err := c.ClusterPutResult(rctx, fpA, fpB, scores); err != nil {
				n.peerFail(id)
				telemetry.Add(v.pm[id].replicationFailures, 1)
				telemetry.Add("cluster/replication_failures", 1)
				continue
			}
			n.peerOK(id)
			telemetry.Add(v.pm[id].replications, 1)
			telemetry.Add("cluster/replications", 1)
		}
	}()
}

// onIntern is the InternObserver installed into the service: every
// externally submitted AIG is replicated to its fingerprint's ring
// owners so the nodes most likely to be asked about it already hold
// it. Cluster-internal interning (fill payloads, replication receives)
// does not re-trigger this — that asymmetry prevents replication
// storms.
func (n *Node) onIntern(ctx context.Context, v service.AIGView) {
	targets := n.aliveTargets(n.table.Ring().Owners(v.Fingerprint))
	if len(targets) == 0 {
		return
	}
	payload, err := n.svc.AIGERFor(v.Fingerprint)
	if err != nil {
		return
	}
	// Detached from the request, bounded by the node lifetime (Close
	// cancels it) — same discipline as replicateResult.
	rctx := context.WithoutCancel(ctx)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		rctx, cancel := context.WithTimeout(rctx, n.cfg.ReplicationTimeout)
		defer cancel()
		defer context.AfterFunc(n.baseCtx, cancel)()
		if err := faultinject.HitCtx(rctx, PointReplicateAIG); err != nil {
			telemetry.Add("cluster/replication_failures", 1)
			return
		}
		v := n.view()
		for _, id := range targets {
			c := v.peers[id]
			if c == nil {
				continue
			}
			if _, err := c.ClusterPutAIG(rctx, payload); err != nil {
				n.peerFail(id)
				telemetry.Add(v.pm[id].replicationFailures, 1)
				telemetry.Add("cluster/replication_failures", 1)
				continue
			}
			n.peerOK(id)
			telemetry.Add(v.pm[id].replications, 1)
			telemetry.Add("cluster/replications", 1)
		}
	}()
}

// ensureLocal makes a fingerprint resolvable on this node: if the
// local store misses, fetch the canonical AIGER from the fingerprint's
// alive ring owners (then any other alive peer — replication may not
// have converged yet) and intern it. Only when the whole cluster comes
// up empty is the fingerprint actually unknown.
func (n *Node) ensureLocal(ctx context.Context, fp string) error {
	if n.svc.HasAIG(fp) {
		return nil
	}
	v := n.view()
	owners := n.table.Owners(fp) // alive owners first
	seen := map[string]bool{n.cfg.NodeID: true}
	candidates := make([]string, 0, len(v.peerIDs))
	for _, id := range owners {
		if !seen[id] {
			seen[id] = true
			candidates = append(candidates, id)
		}
	}
	for _, id := range v.peerIDs {
		if !seen[id] && !n.table.IsDown(id) {
			candidates = append(candidates, id)
		}
	}
	for _, id := range candidates {
		c := v.peers[id]
		if c == nil {
			continue
		}
		payload, err := c.ClusterGetAIGER(ctx, fp)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			var ae *client.APIError
			if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
				// A contract 404 just means this peer doesn't have it
				// either; anything else counts against its health.
				n.peerFail(id)
			}
			continue
		}
		v, err := n.svc.InternAIGER(payload)
		if err != nil || v.Fingerprint != fp {
			telemetry.Add("cluster/aig_fetch_failures", 1)
			continue
		}
		n.peerOK(id)
		telemetry.Add("cluster/aig_fetches", 1)
		trace.AddEvent(ctx, "cluster_aig_fetch", trace.A("peer", id))
		return nil
	}
	return fmt.Errorf("%w %q (not stored anywhere in the cluster)", service.ErrUnknownFingerprint, fp)
}

// aliveTargets filters an owner list down to alive peers (self
// excluded).
func (n *Node) aliveTargets(owners []string) []string {
	var out []string
	for _, id := range owners {
		if id == n.cfg.NodeID || n.table.IsDown(id) {
			continue
		}
		out = append(out, id)
	}
	return out
}
