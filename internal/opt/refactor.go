package opt

import (
	"repro/internal/aig"
	"repro/internal/sop"
	"repro/internal/synth"
	"repro/internal/tt"
)

// RefactorOptions tunes the refactoring pass.
type RefactorOptions struct {
	// ZeroCost also commits zero-gain restructurings (ABC's rf -z).
	ZeroCost bool
	// MaxLeaves bounds the reconvergence-driven cone (default 10,
	// capped at 12 to keep cone truth tables cheap).
	MaxLeaves int
}

func (o RefactorOptions) maxLeaves() int {
	switch {
	case o.MaxLeaves <= 0:
		return 10
	case o.MaxLeaves > 12:
		return 12
	}
	return o.MaxLeaves
}

// RefactorOnce performs a single refactoring pass: for every node a large
// reconvergence-driven cone is collapsed to its truth table, re-expressed
// as a minimized, kernel-factored form (trying both polarities), and the
// cone is replaced when the factored structure is smaller than the
// bounded MFFC it frees.
func RefactorOnce(g *aig.AIG, opts RefactorOptions) *aig.AIG {
	return instrumentPass("refactor", g, func() *aig.AIG { return refactorOnce(g, opts) })
}

func refactorOnce(g *aig.AIG, opts RefactorOptions) *aig.AIG {
	refs := g.RefCounts()
	decisions := make(map[int]decision)
	maxLeaves := opts.maxLeaves()

	for id := g.NumPIs() + 1; id < g.NumObjs(); id++ {
		if refs[id] == 0 {
			continue
		}
		leaves := g.ReconvCut(id, maxLeaves)
		if len(leaves) < 3 || len(leaves) > maxLeaves+1 {
			continue
		}
		boundary := boundarySet(leaves)
		saved := g.MFFCSizeBounded(id, refs, boundary)
		if saved < 2 && !opts.ZeroCost {
			continue // nothing worth restructuring
		}
		f := g.CutTT(id, leaves)
		cLeaves, cf := compactCut(leaves, f)
		var dec decision
		var cost int
		switch {
		case cf.IsConst0():
			dec = constDecision(false)
		case cf.IsConst1():
			dec = constDecision(true)
		case len(cLeaves) == 1:
			dec = litDecision(cLeaves[0], cf.Equal(tt.Var(0, 1).Not()))
		default:
			mini := factoredStructure(cf)
			blocked := blockedSet(g, id, refs, boundary)
			cost = synth.InstantiateCostBlocked(g, mini, oldLeafLits(cLeaves), blocked)
			dec = decision{mini: mini, leaves: cLeaves}
		}
		gain := saved - cost
		if gain > 0 || (opts.ZeroCost && gain == 0) {
			decisions[id] = dec
		}
	}
	return keepSmaller(g, rebuild(g, decisions), true)
}

// Refactor iterates refactoring passes to convergence.
func Refactor(g *aig.AIG, opts RefactorOptions) *aig.AIG {
	cur := g
	for i := 0; i < 8; i++ {
		next := RefactorOnce(cur, opts)
		if next.NumAnds() >= cur.NumAnds() {
			return keepSmaller(cur, next, opts.ZeroCost)
		}
		cur = next
	}
	return cur
}

// factoredStructure builds a single-output AIG for f from the smaller of
// the factored forms of f and its complement.
func factoredStructure(f tt.TT) *aig.AIG {
	pos := factoredAIG(f, false)
	neg := factoredAIG(f.Not(), true)
	if neg.NumAnds() < pos.NumAnds() {
		return neg
	}
	return pos
}

func factoredAIG(f tt.TT, invertOut bool) *aig.AIG {
	expr := sop.Factor(sop.MinimizeTT(f))
	g := aig.New(f.NumVars())
	in := make([]aig.Lit, f.NumVars())
	for i := range in {
		in[i] = g.PI(i)
	}
	out := synth.ExprLit(g, expr, in)
	g.AddPO(out.NotCond(invertOut))
	return g.Cleanup()
}
