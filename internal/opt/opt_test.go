package opt

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/synth"
	"repro/internal/tt"
)

// redundantAIG builds an AIG with deliberate structural waste: a naive
// SOP-of-minterms realization that every optimizer should shrink.
func redundantAIG(f tt.TT) *aig.AIG {
	n := f.NumVars()
	g := aig.New(n)
	out := aig.LitFalse
	for m := 0; m < f.NumBits(); m++ {
		if !f.Bit(m) {
			continue
		}
		term := aig.LitTrue
		for v := 0; v < n; v++ {
			term = g.And(term, g.PI(v).NotCond(m>>uint(v)&1 == 0))
		}
		out = g.Or(out, term)
	}
	g.AddPO(out)
	return g.Cleanup()
}

func mustEquiv(t *testing.T, name string, a, b *aig.AIG) {
	t.Helper()
	idx, err := aig.Equivalent(a, b)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if idx != -1 {
		t.Fatalf("%s: output %d changed function", name, idx)
	}
}

type passFn struct {
	name string
	run  func(*aig.AIG) *aig.AIG
}

func allPasses() []passFn {
	return []passFn{
		{"rewrite", func(g *aig.AIG) *aig.AIG { return RewriteOnce(g, RewriteOptions{}) }},
		{"rewrite-z", func(g *aig.AIG) *aig.AIG { return RewriteOnce(g, RewriteOptions{ZeroCost: true}) }},
		{"refactor", func(g *aig.AIG) *aig.AIG { return RefactorOnce(g, RefactorOptions{}) }},
		{"refactor-z", func(g *aig.AIG) *aig.AIG { return RefactorOnce(g, RefactorOptions{ZeroCost: true}) }},
		{"resub", func(g *aig.AIG) *aig.AIG { return ResubOnce(g, ResubOptions{}) }},
		{"resub-z", func(g *aig.AIG) *aig.AIG { return ResubOnce(g, ResubOptions{ZeroCost: true}) }},
		{"balance", Balance},
	}
}

func TestPassesPreserveEquivalenceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	for trial := 0; trial < 6; trial++ {
		n := 4 + trial%3
		spec := []tt.TT{tt.Random(n, r), tt.Random(n, r)}
		for _, rec := range synth.Recipes() {
			g := rec.Build(spec)
			for _, p := range allPasses() {
				ng := p.run(g)
				mustEquiv(t, rec.Name+"/"+p.name, g, ng)
				if err := ng.Check(); err != nil {
					t.Fatalf("%s/%s: %v", rec.Name, p.name, err)
				}
			}
		}
	}
}

func TestPassesNeverGrow(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	for trial := 0; trial < 10; trial++ {
		n := 4 + trial%4
		g := redundantAIG(tt.Random(n, r))
		for _, p := range allPasses() {
			if p.name == "balance" {
				continue // balance optimizes depth, not size
			}
			ng := p.run(g)
			if ng.NumAnds() > g.NumAnds() {
				t.Errorf("trial %d: %s grew %d -> %d", trial, p.name, g.NumAnds(), ng.NumAnds())
			}
		}
	}
}

func TestRewriteShrinksRedundant(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	f := tt.Random(5, r)
	g := redundantAIG(f)
	ng := Rewrite(g, RewriteOptions{})
	mustEquiv(t, "rewrite", g, ng)
	if ng.NumAnds() >= g.NumAnds() {
		t.Errorf("rewrite failed to shrink minterm SOP: %d -> %d", g.NumAnds(), ng.NumAnds())
	}
}

func TestRefactorShrinksRedundant(t *testing.T) {
	r := rand.New(rand.NewSource(94))
	f := tt.Random(6, r)
	g := redundantAIG(f)
	ng := Refactor(g, RefactorOptions{})
	mustEquiv(t, "refactor", g, ng)
	if ng.NumAnds() >= g.NumAnds() {
		t.Errorf("refactor failed to shrink: %d -> %d", g.NumAnds(), ng.NumAnds())
	}
}

func TestResubFindsSharing(t *testing.T) {
	// Build g with an explicit duplicated function: two separately built
	// copies of the same subfunction feeding different outputs. The
	// duplicate must be 0-resubbed away.
	g := aig.New(4)
	a, b, c, d := g.PI(0), g.PI(1), g.PI(2), g.PI(3)
	// First copy: (a&b)|c built directly.
	x1 := g.Or(g.And(a, b), c)
	// Second copy: the distributed form (a|c)&(b|c) — structurally
	// disjoint from the first, functionally identical.
	x2 := g.And(g.Or(a, c), g.Or(b, c))
	g.AddPO(g.And(x1, d))
	g.AddPO(g.And(x2, d.Not()))
	ng := ResubOnce(g, ResubOptions{})
	mustEquiv(t, "resub", g, ng)
	if ng.NumAnds() >= g.NumAnds() {
		t.Errorf("resub failed to merge functional duplicates: %d -> %d", g.NumAnds(), ng.NumAnds())
	}
}

func TestResubOneGate(t *testing.T) {
	// out = a&b&c; with divisors a&b and c present, out = AND(ab, c)
	// exists structurally — but build out redundantly via minterms.
	n := 3
	f := tt.Var(0, n).And(tt.Var(1, n)).And(tt.Var(2, n))
	g := redundantAIG(f)
	ng := Resub(g, ResubOptions{})
	mustEquiv(t, "resub", g, ng)
	if ng.NumAnds() > 2 {
		t.Errorf("AND3 should collapse to 2 nodes, got %d", ng.NumAnds())
	}
}

func TestResubSkipsLargeInputs(t *testing.T) {
	g := aig.New(tt.MaxVars + 1)
	l := g.PI(0)
	for i := 1; i <= tt.MaxVars; i++ {
		l = g.And(l, g.PI(i))
	}
	g.AddPO(l)
	ng := ResubOnce(g, ResubOptions{})
	if ng != g {
		t.Error("resub on >MaxVars inputs should be the identity")
	}
}

func TestBalanceReducesDepth(t *testing.T) {
	g := aig.New(8)
	chain := g.PI(0)
	for i := 1; i < 8; i++ {
		chain = g.And(chain, g.PI(i))
	}
	g.AddPO(chain)
	ng := Balance(g)
	mustEquiv(t, "balance", g, ng)
	if ng.NumLevels() != 3 {
		t.Errorf("balanced AND8 depth = %d, want 3", ng.NumLevels())
	}
	if ng.NumAnds() != 7 {
		t.Errorf("balanced AND8 size = %d, want 7", ng.NumAnds())
	}
}

func TestBalancePreservesShared(t *testing.T) {
	r := rand.New(rand.NewSource(95))
	for trial := 0; trial < 10; trial++ {
		spec := []tt.TT{tt.Random(5, r), tt.Random(5, r)}
		g := synth.SynthSOP(spec)
		ng := Balance(g)
		mustEquiv(t, "balance", g, ng)
		if err := ng.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFlowsCorrectAndEffective(t *testing.T) {
	r := rand.New(rand.NewSource(96))
	f := tt.Random(5, r)
	g := redundantAIG(f)
	for _, flow := range Flows() {
		ng := flow.Run(g, 7)
		mustEquiv(t, flow.Name, g, ng)
		if ng.NumAnds() >= g.NumAnds() {
			t.Errorf("%s failed to reduce a minterm SOP: %d -> %d", flow.Name, g.NumAnds(), ng.NumAnds())
		}
	}
}

func TestRunFlowDispatch(t *testing.T) {
	g := aig.New(2)
	g.AddPO(g.And(g.PI(0), g.PI(1)))
	if _, err := RunFlow("dc2", g, 0); err != nil {
		t.Error(err)
	}
	if _, err := RunFlow("bogus", g, 0); err == nil {
		t.Error("unknown flow should error")
	}
}

func TestDeepSynDeterministicPerSeed(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	g := redundantAIG(tt.Random(5, r))
	a := DeepSyn(context.Background(), g, DeepSynOptions{Effort: 4, Seed: 42})
	b := DeepSyn(context.Background(), g, DeepSynOptions{Effort: 4, Seed: 42})
	if a.NumAnds() != b.NumAnds() {
		t.Error("DeepSyn not deterministic for fixed seed")
	}
	mustEquiv(t, "deepsyn", g, a)
}

func TestOrchestrateConverges(t *testing.T) {
	r := rand.New(rand.NewSource(98))
	g := redundantAIG(tt.Random(4, r))
	ng := Orchestrate(context.Background(), g, 50)
	mustEquiv(t, "orchestrate", g, ng)
	// Running it again should make no further progress.
	ng2 := Orchestrate(context.Background(), ng, 50)
	if ng2.NumAnds() < ng.NumAnds()-1 {
		t.Errorf("orchestrate left significant gains: %d -> %d", ng.NumAnds(), ng2.NumAnds())
	}
}

func TestFlowsOnMultiOutput(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	spec := []tt.TT{tt.Random(6, r), tt.Random(6, r), tt.Random(6, r)}
	g := synth.SynthSOP(spec)
	for _, flow := range Flows() {
		ng := flow.Run(g, 3)
		mustEquiv(t, flow.Name, g, ng)
	}
}

func TestCompressToConvergence(t *testing.T) {
	r := rand.New(rand.NewSource(100))
	g := redundantAIG(tt.Random(5, r))
	ng := CompressToConvergence(context.Background(), g)
	mustEquiv(t, "compress", g, ng)
	if ng.NumAnds() > g.NumAnds() {
		t.Error("compress grew the graph")
	}
}

func TestConstantOutputsCollapse(t *testing.T) {
	// An AIG computing a tautology in a convoluted way must collapse.
	g := aig.New(3)
	a, b := g.PI(0), g.PI(1)
	x := g.Or(g.And(a, b), g.And(a, b.Not()))
	y := g.Or(x, a.Not()) // == a | !a == 1? No: x == a, so y == a | !a == 1.
	g.AddPO(y)
	for _, p := range allPasses() {
		ng := p.run(g)
		mustEquiv(t, p.name, g, ng)
	}
	ng := CompressToConvergence(context.Background(), g)
	if ng.NumAnds() != 0 {
		t.Errorf("tautology not collapsed: %d nodes remain", ng.NumAnds())
	}
}

func TestDecisionRebuildDirect(t *testing.T) {
	// White-box: replacing a node with an equivalent structure through
	// rebuild keeps the function.
	g := aig.New(3)
	a, b, c := g.PI(0), g.PI(1), g.PI(2)
	ab := g.And(a, b)
	out := g.And(ab, c)
	g.AddPO(out)
	// Replace out with AND3 mini over PIs directly.
	mini := aig.New(3)
	mini.AddPO(mini.And(mini.And(mini.PI(0), mini.PI(1)), mini.PI(2)))
	ng := rebuild(g, map[int]decision{
		out.Node(): {mini: mini, leaves: []int{a.Node(), b.Node(), c.Node()}},
	})
	mustEquiv(t, "rebuild", g, ng)
}

func TestFlowsHonorCancellation(t *testing.T) {
	// A context cancelled before the first convergence round must make
	// every flow return immediately with an AIG equivalent to its input
	// (the degenerate "best so far": the input itself).
	r := rand.New(rand.NewSource(101))
	g := redundantAIG(tt.Random(5, r))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, flow := range Flows() {
		ng := flow.RunCtx(ctx, g, 7)
		mustEquiv(t, flow.Name+" (cancelled)", g, ng)
		if ng.NumAnds() != g.NumAnds() {
			t.Errorf("%s did optimization work under a cancelled context", flow.Name)
		}
	}
	if ng := CompressToConvergence(ctx, g); ng != g {
		t.Error("compress did optimization work under a cancelled context")
	}
}
