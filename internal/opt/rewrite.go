package opt

import (
	"repro/internal/aig"
	"repro/internal/synth"
	"repro/internal/tt"
)

// RewriteOptions tunes the cut-rewriting pass.
type RewriteOptions struct {
	// ZeroCost also commits replacements with zero gain, diversifying the
	// structure (ABC's rw -z).
	ZeroCost bool
	// K is the cut size (default 4, the classic DAC'06 setting).
	K int
	// MaxCuts bounds priority cuts per node (default 8).
	MaxCuts int
}

func (o RewriteOptions) k() int {
	if o.K < 2 {
		return 4
	}
	if o.K > 6 {
		return 6 // NPN library limit
	}
	return o.K
}

// RewriteOnce performs a single DAG-aware rewriting pass: for every node,
// the K-feasible cuts are enumerated, each cut function is NPN-
// canonicalized and resynthesized from the precomputed library, and the
// best positive-gain replacement (saved MFFC minus newly added structure)
// is committed. Returns the rebuilt graph.
func RewriteOnce(g *aig.AIG, opts RewriteOptions) *aig.AIG {
	return instrumentPass("rewrite", g, func() *aig.AIG { return rewriteOnce(g, opts) })
}

func rewriteOnce(g *aig.AIG, opts RewriteOptions) *aig.AIG {
	cuts := g.EnumerateCuts(aig.CutParams{K: opts.k(), MaxCuts: opts.MaxCuts})
	refs := g.RefCounts()
	decisions := make(map[int]decision)

	for id := g.NumPIs() + 1; id < g.NumObjs(); id++ {
		if refs[id] == 0 {
			continue // dangling: rebuild drops it anyway
		}
		bestGain := 0
		var best decision
		haveBest := false
		for _, cut := range cuts[id] {
			if len(cut.Leaves) < 2 || (len(cut.Leaves) == 1 && cut.Leaves[0] == id) {
				continue
			}
			boundary := boundarySet(cut.Leaves)
			saved := g.MFFCSizeBounded(id, refs, boundary)
			if saved <= 0 {
				continue
			}
			f := g.CutTT(id, cut.Leaves)
			// Drop leaves outside the true support so the library sees
			// the compacted function.
			leaves, cf := compactCut(cut.Leaves, f)
			var dec decision
			var cost int
			switch {
			case cf.IsConst0():
				dec = constDecision(false)
				cost = 0
			case cf.IsConst1():
				dec = constDecision(true)
				cost = 0
			case len(leaves) == 1:
				// Function of a single leaf: identity or complement.
				compl := cf.Equal(tt.Var(0, 1).Not())
				dec = litDecision(leaves[0], compl)
				cost = 0
			default:
				mini := synth.LibraryStructure(cf)
				blocked := blockedSet(g, id, refs, boundary)
				cost = synth.InstantiateCostBlocked(g, mini, oldLeafLits(leaves), blocked)
				dec = decision{mini: mini, leaves: leaves}
			}
			gain := saved - cost
			if gain > bestGain || (opts.ZeroCost && !haveBest && gain == bestGain) {
				bestGain = gain
				best = dec
				haveBest = true
			}
		}
		if haveBest {
			decisions[id] = best
		}
	}
	// Gain accounting is an estimate (overlapping MFFCs, sharing with the
	// not-yet-rebuilt fanout logic); never return a larger graph.
	return keepSmaller(g, rebuild(g, decisions), true)
}

// Rewrite iterates rewriting passes until the AND count stops improving.
func Rewrite(g *aig.AIG, opts RewriteOptions) *aig.AIG {
	cur := g
	for i := 0; i < 12; i++ {
		next := RewriteOnce(cur, opts)
		if next.NumAnds() >= cur.NumAnds() {
			return keepSmaller(cur, next, opts.ZeroCost)
		}
		cur = next
	}
	return cur
}

// compactCut removes cut leaves the function does not depend on and
// shrinks the truth table accordingly.
func compactCut(leaves []int, f tt.TT) ([]int, tt.TT) {
	support := f.Support()
	if len(support) == len(leaves) {
		return leaves, f
	}
	kept := make([]int, len(support))
	perm := make([]int, 0, f.NumVars())
	for i, v := range support {
		kept[i] = leaves[v]
		perm = append(perm, v)
	}
	// Route support variable v to position i, dead variables to the tail.
	for v := 0; v < f.NumVars(); v++ {
		if !contains(support, v) {
			perm = append(perm, v)
		}
	}
	g := f.Permute(perm)
	if len(support) == 0 {
		return nil, g.Shrink(0)
	}
	return kept, g.Shrink(len(support))
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// constDecision replaces a node by a constant.
func constDecision(v bool) decision {
	mini := aig.New(0)
	mini.AddPO(aig.LitFalse.NotCond(v))
	return decision{mini: mini, leaves: nil}
}

// blockedSet collects the bounded-MFFC interior of id: nodes scheduled
// for removal must not be counted as shareable during cost estimation.
func blockedSet(g *aig.AIG, id int, refs []int, boundary map[int]bool) map[int]bool {
	nodes := g.MFFCNodesBounded(id, refs, boundary)
	b := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		b[n] = true
	}
	return b
}
