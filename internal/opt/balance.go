package opt

import (
	"sort"

	"repro/internal/aig"
)

// Balance rebuilds the AIG with minimum-depth AND trees: maximal
// multi-input AND supergates are collected through non-complemented,
// single-fanout edges and re-assembled pairing the two shallowest
// operands first (ABC's "b"). Structural hashing reshapes shared logic.
func Balance(g *aig.AIG) *aig.AIG {
	return instrumentPass("balance", g, func() *aig.AIG { return balance(g) })
}

func balance(g *aig.AIG) *aig.AIG {
	refs := g.RefCounts()
	ng := aig.New(g.NumPIs())
	copyNames(g, ng)
	m := make([]aig.Lit, g.NumObjs())
	for i := range m {
		m[i] = unmapped
	}
	m[0] = aig.LitFalse
	for i := 1; i <= g.NumPIs(); i++ {
		m[i] = aig.MakeLit(i, false)
	}

	var build func(id int) aig.Lit
	// collectSuper gathers the leaves of the maximal AND tree rooted at
	// id, expanding through plain edges into single-fanout AND nodes.
	var collectSuper func(l aig.Lit, root bool, leaves *[]aig.Lit)
	collectSuper = func(l aig.Lit, root bool, leaves *[]aig.Lit) {
		id := l.Node()
		if !root {
			if l.IsCompl() || !g.IsAnd(id) || refs[id] > 1 {
				*leaves = append(*leaves, l)
				return
			}
		}
		f0, f1 := g.Fanins(id)
		collectSuper(f0, false, leaves)
		collectSuper(f1, false, leaves)
	}
	build = func(id int) aig.Lit {
		if m[id] != unmapped {
			return m[id]
		}
		var leaves []aig.Lit
		collectSuper(aig.MakeLit(id, false), true, &leaves)
		// Map the leaves into the new graph.
		mapped := make([]aig.Lit, len(leaves))
		for i, l := range leaves {
			mapped[i] = build(l.Node()).NotCond(l.IsCompl())
		}
		// Huffman-style: repeatedly AND the two shallowest operands.
		for len(mapped) > 1 {
			sort.SliceStable(mapped, func(i, j int) bool {
				return ng.Level(mapped[i].Node()) < ng.Level(mapped[j].Node())
			})
			mapped = append(mapped[2:], ng.And(mapped[0], mapped[1]))
		}
		l := aig.LitTrue
		if len(mapped) == 1 {
			l = mapped[0]
		}
		m[id] = l
		return l
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		ng.AddPO(build(po.Node()).NotCond(po.IsCompl()))
	}
	return ng
}
