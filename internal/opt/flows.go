package opt

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/aig"
	"repro/internal/lutmap"
	"repro/internal/telemetry"
)

// Flow is a named high-effort optimization flow. Seed feeds any
// randomized components (only DeepSyn uses it). RunCtx honors
// cancellation at convergence-loop granularity: when the context is
// done, the flow stops iterating and returns the best AIG found so
// far, which is always functionally equivalent to the input.
type Flow struct {
	Name        string
	Description string
	RunCtx      func(ctx context.Context, g *aig.AIG, seed int64) *aig.AIG
}

// Run executes the flow without cancellation.
func (f Flow) Run(g *aig.AIG, seed int64) *aig.AIG {
	//lint:ignore ctxflow compatibility wrapper whose documented contract is "without cancellation"; cancelable callers use RunCtx
	return f.RunCtx(context.Background(), g, seed)
}

// Flows returns the paper's three high-effort flows in canonical order.
// Each flow's RunCtx is telemetry-instrumented under "flow/<name>".
func Flows() []Flow {
	return []Flow{
		{"orchestrate", "per-round best of rewrite/refactor/resub to convergence",
			instrumentFlow("orchestrate", func(ctx context.Context, g *aig.AIG, _ int64) *aig.AIG { return Orchestrate(ctx, g, 24) })},
		{"dc2", "the classic balance/rewrite/refactor script, iterated to convergence",
			instrumentFlow("dc2", func(ctx context.Context, g *aig.AIG, _ int64) *aig.AIG { return DC2Converge(ctx, g) })},
		{"deepsyn", "randomized flow search with LUT-mapping shake-ups (T=10)",
			instrumentFlow("deepsyn", func(ctx context.Context, g *aig.AIG, seed int64) *aig.AIG {
				return DeepSyn(ctx, g, DeepSynOptions{Effort: 10, Seed: seed})
			})},
	}
}

// RunFlow executes the named flow without cancellation.
func RunFlow(name string, g *aig.AIG, seed int64) (*aig.AIG, error) {
	//lint:ignore ctxflow compatibility wrapper whose documented contract is "without cancellation"; cancelable callers use RunFlowContext
	return RunFlowContext(context.Background(), name, g, seed)
}

// RunFlowContext executes the named flow under the context: when ctx is
// cancelled or times out, the flow returns its best equivalent AIG so
// far instead of iterating to convergence.
func RunFlowContext(ctx context.Context, name string, g *aig.AIG, seed int64) (*aig.AIG, error) {
	for _, f := range Flows() {
		if f.Name == name {
			return f.RunCtx(ctx, g, seed), nil
		}
	}
	return nil, fmt.Errorf("opt: unknown flow %q", name)
}

// Orchestrate reproduces the orchestration idea of Li et al. (TCAD'24) at
// pass granularity: each round tries resubstitution first (the operator
// the paper reports orchestration favoring heavily), then rewriting and
// refactoring, and commits the round's best reduction, so the operator
// mix adapts to the circuit. Rounds stop at convergence, after
// maxRounds, or when ctx is done (returning the best AIG so far).
func Orchestrate(ctx context.Context, g *aig.AIG, maxRounds int) *aig.AIG {
	cur := g
	for round := 0; round < maxRounds; round++ {
		if ctx.Err() != nil {
			return cur
		}
		telemetry.Add("flow/orchestrate/rounds", 1)
		// Resubstitution gets the first shot and is kept whenever it
		// makes progress; the structural operators compete otherwise.
		rs := ResubOnce(cur, ResubOptions{MaxDivisors: 150})
		if rs.NumAnds() < cur.NumAnds() {
			cur = rs
			continue
		}
		candidates := []*aig.AIG{
			RewriteOnce(cur, RewriteOptions{}),
			RefactorOnce(cur, RefactorOptions{}),
		}
		best := cur
		for _, c := range candidates {
			if c.NumAnds() < best.NumAnds() {
				best = c
			}
		}
		if best == cur {
			// Plateau: reshape with balancing and zero-cost rewriting to
			// expose new cuts; if still stuck, escape the local minimum
			// with a LUT map/resynthesis round trip before giving up.
			shaken := ResubOnce(RewriteOnce(Balance(cur), RewriteOptions{ZeroCost: true}), ResubOptions{})
			shaken = RefactorOnce(shaken, RefactorOptions{})
			if shaken.NumAnds() < cur.NumAnds() {
				cur = shaken
				continue
			}
			escaped := DC2(lutmap.RoundTrip(cur, lutmap.Options{K: 6}))
			if escaped.NumAnds() < cur.NumAnds() {
				cur = escaped
				continue
			}
			return cur
		}
		cur = best
	}
	return cur
}

// DC2Converge iterates the dc2 script until the AND count stops
// improving — the "high-effort" usage of dc2 in practice — or ctx is
// done.
func DC2Converge(ctx context.Context, g *aig.AIG) *aig.AIG {
	cur := g
	for i := 0; i < 8; i++ {
		if ctx.Err() != nil {
			return cur
		}
		telemetry.Add("flow/dc2/iterations", 1)
		next := DC2(cur)
		if next.NumAnds() >= cur.NumAnds() {
			return cur
		}
		cur = next
	}
	return cur
}

// DC2 runs the classic ABC dc2 script: b; rw; rf; b; rw; rwz; b; rfz;
// rwz; b.
func DC2(g *aig.AIG) *aig.AIG {
	cur := Balance(g)
	cur = RewriteOnce(cur, RewriteOptions{})
	cur = RefactorOnce(cur, RefactorOptions{})
	cur = Balance(cur)
	cur = RewriteOnce(cur, RewriteOptions{})
	cur = RewriteOnce(cur, RewriteOptions{ZeroCost: true})
	cur = Balance(cur)
	cur = RefactorOnce(cur, RefactorOptions{ZeroCost: true})
	cur = RewriteOnce(cur, RewriteOptions{ZeroCost: true})
	cur = Balance(cur)
	return keepSmaller(g, cur, true)
}

// DeepSynOptions tunes the randomized DeepSyn flow.
type DeepSynOptions struct {
	// Effort is the iteration budget (the paper's -T 10 analogue).
	Effort int
	// Seed drives move selection.
	Seed int64
}

// DeepSyn emulates &deepsyn: a randomized on-the-fly search over
// transformation sequences. Each iteration applies a randomly chosen move
// — a dc2 round, a k-LUT map/resynthesis round trip (the broad
// restructuring move), or operator combinations — keeping the best AIG
// seen and restarting from it when the working copy drifts too far.
// When ctx is done, the search stops and returns the best AIG so far.
func DeepSyn(ctx context.Context, g *aig.AIG, opts DeepSynOptions) *aig.AIG {
	effort := opts.Effort
	if effort <= 0 {
		effort = 10
	}
	r := rand.New(rand.NewSource(opts.Seed))
	best := g
	cur := g
	moves := []func(*aig.AIG) *aig.AIG{
		func(a *aig.AIG) *aig.AIG { return DC2(a) },
		func(a *aig.AIG) *aig.AIG { return lutmap.RoundTrip(a, lutmap.Options{K: 4}) },
		func(a *aig.AIG) *aig.AIG { return lutmap.RoundTrip(a, lutmap.Options{K: 6}) },
		func(a *aig.AIG) *aig.AIG {
			return ResubOnce(RewriteOnce(a, RewriteOptions{ZeroCost: true}), ResubOptions{})
		},
		func(a *aig.AIG) *aig.AIG {
			return RefactorOnce(ResubOnce(a, ResubOptions{ZeroCost: true}), RefactorOptions{})
		},
		func(a *aig.AIG) *aig.AIG { return Balance(RewriteOnce(a, RewriteOptions{})) },
	}
	for i := 0; i < effort; i++ {
		if ctx.Err() != nil {
			return best
		}
		telemetry.Add("flow/deepsyn/moves", 1)
		move := moves[r.Intn(len(moves))]
		cur = move(cur)
		if cur.NumAnds() < best.NumAnds() {
			best = cur
		}
		// Restart from the best when the working copy has drifted.
		if float64(cur.NumAnds()) > 1.25*float64(best.NumAnds())+4 {
			cur = best
		}
	}
	return best
}

// CompressToConvergence interleaves all operators until no further
// reduction is found — a convenience "max effort" flow exposed by the
// library beyond the paper's three. It honors ctx at iteration
// granularity.
func CompressToConvergence(ctx context.Context, g *aig.AIG) *aig.AIG {
	cur := g
	for i := 0; i < 32; i++ {
		if ctx.Err() != nil {
			return cur
		}
		next := DC2(cur)
		next = ResubOnce(next, ResubOptions{})
		next = RefactorOnce(next, RefactorOptions{})
		if next.NumAnds() >= cur.NumAnds() {
			return cur
		}
		cur = next
	}
	return cur
}
