// Package opt implements the AIG optimization algorithms of the paper's
// experimental substrate: DAG-aware rewriting, refactoring, resubstitution
// and balancing, plus the three high-effort flows used in the evaluation
// (Orchestrate, DC2, DeepSyn).
//
// All passes follow a select-then-rebuild architecture: candidate
// replacements are selected on the current graph with MFFC-based gain
// accounting, then a demand-driven rebuild materializes only the logic
// reachable from the outputs, dropping the fanout-free cones of replaced
// nodes. Every pass preserves functional equivalence by construction
// (replacement structures implement the exact cut function); the test
// suite additionally verifies equivalence by exhaustive simulation after
// every pass.
package opt

import (
	"repro/internal/aig"
	"repro/internal/synth"
)

// decision records a chosen replacement for an AND node of the old graph:
// a single-output structure over the functions of the given old-graph
// leaf nodes. The structure's output literal implements the node's plain
// (non-complemented) function.
type decision struct {
	mini   *aig.AIG
	leaves []int
}

// litDecision builds a decision replacing a node by a literal of another
// old-graph node (possibly complemented) — the 0-resubstitution shape.
func litDecision(node int, compl bool) decision {
	mini := aig.New(1)
	mini.AddPO(mini.PI(0).NotCond(compl))
	return decision{mini: mini, leaves: []int{node}}
}

// unmapped marks not-yet-rebuilt nodes during rebuild.
const unmapped = aig.Lit(0xFFFFFFFF)

// rebuild constructs a new AIG implementing the same outputs as g,
// materializing only the logic reachable from the POs and splicing in the
// per-node decisions. The invariant maintained is that the literal mapped
// for old node id implements exactly the function of node id.
func rebuild(g *aig.AIG, decisions map[int]decision) *aig.AIG {
	ng := aig.New(g.NumPIs())
	copyNames(g, ng)
	m := make([]aig.Lit, g.NumObjs())
	for i := range m {
		m[i] = unmapped
	}
	m[0] = aig.LitFalse
	for i := 1; i <= g.NumPIs(); i++ {
		m[i] = aig.MakeLit(i, false)
	}
	var build func(id int) aig.Lit
	build = func(id int) aig.Lit {
		if m[id] != unmapped {
			return m[id]
		}
		if dec, ok := decisions[id]; ok {
			leafLits := make([]aig.Lit, len(dec.leaves))
			for i, leaf := range dec.leaves {
				leafLits[i] = build(leaf)
			}
			l := synth.Instantiate(ng, dec.mini, leafLits)
			m[id] = l
			return l
		}
		f0, f1 := g.Fanins(id)
		a := build(f0.Node()).NotCond(f0.IsCompl())
		b := build(f1.Node()).NotCond(f1.IsCompl())
		l := ng.And(a, b)
		m[id] = l
		return l
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		ng.AddPO(build(po.Node()).NotCond(po.IsCompl()))
	}
	return ng
}

func copyNames(from, to *aig.AIG) {
	for i := 0; i < from.NumPIs(); i++ {
		if n := from.PIName(i); n != "" {
			to.SetPIName(i, n)
		}
	}
	for i := 0; i < from.NumPOs(); i++ {
		if n := from.POName(i); n != "" {
			to.SetPOName(i, n)
		}
	}
}

// oldLeafLits wraps old-graph node ids as plain literals for cost
// estimation against the old graph.
func oldLeafLits(leaves []int) []aig.Lit {
	lits := make([]aig.Lit, len(leaves))
	for i, id := range leaves {
		lits[i] = aig.MakeLit(id, false)
	}
	return lits
}

// boundarySet builds the protected-leaf set used in bounded MFFC
// computations.
func boundarySet(leaves []int) map[int]bool {
	b := make(map[int]bool, len(leaves))
	for _, l := range leaves {
		b[l] = true
	}
	return b
}

// keepSmaller returns the candidate when it improves on (or, when
// allowEqual, matches) the incumbent's AND count, else the incumbent.
func keepSmaller(old, candidate *aig.AIG, allowEqual bool) *aig.AIG {
	if candidate.NumAnds() < old.NumAnds() || (allowEqual && candidate.NumAnds() == old.NumAnds()) {
		return candidate
	}
	return old
}
