package opt

import (
	"context"

	"repro/internal/aig"
	"repro/internal/telemetry"
)

// instrumentPass times one optimization pass under the span
// "opt/<name>" and records the pass's node reduction in the
// "opt/<name>/gates_removed" histogram. All of it is a no-op until
// telemetry is enabled.
func instrumentPass(name string, g *aig.AIG, pass func() *aig.AIG) *aig.AIG {
	//lint:ignore metricname name comes from the fixed pass registry (b, rw, rwz, rf, rfz, rs, rsz), so cardinality is bounded
	sp := telemetry.StartSpan("opt/" + name)
	ng := pass()
	sp.End()
	//lint:ignore metricname name comes from the fixed pass registry, so cardinality is bounded
	telemetry.Observe("opt/"+name+"/gates_removed", float64(g.NumAnds()-ng.NumAnds()))
	return ng
}

// instrumentFlow wraps a whole high-effort flow the same way, under
// "flow/<name>".
func instrumentFlow(name string, run func(context.Context, *aig.AIG, int64) *aig.AIG) func(context.Context, *aig.AIG, int64) *aig.AIG {
	return func(ctx context.Context, g *aig.AIG, seed int64) *aig.AIG {
		//lint:ignore metricname name comes from the fixed flow registry (orchestrate, dc2, deepsyn), so cardinality is bounded
		sp := telemetry.StartSpan("flow/" + name)
		ng := run(ctx, g, seed)
		sp.End()
		//lint:ignore metricname name comes from the fixed flow registry, so cardinality is bounded
		telemetry.Observe("flow/"+name+"/gates_removed", float64(g.NumAnds()-ng.NumAnds()))
		return ng
	}
}
