package opt

import (
	"repro/internal/aig"
	"repro/internal/tt"
)

// ResubOptions tunes simulation-guided resubstitution.
type ResubOptions struct {
	// MaxDivisors caps the divisor candidates considered per node
	// (default 80; most recent nodes first for locality).
	MaxDivisors int
	// Depth selects the resubstitution depth: 0 = replace by an existing
	// literal only, 1 = one new gate over two divisors, 2 = additionally
	// try three-divisor AND3/OR3 shapes. Default 2.
	Depth int
	// ZeroCost also commits zero-gain substitutions.
	ZeroCost bool
}

func (o ResubOptions) maxDivisors() int {
	if o.MaxDivisors <= 0 {
		return 80
	}
	return o.MaxDivisors
}

func (o ResubOptions) depth() int {
	if o.Depth <= 0 {
		return 2
	}
	return o.Depth
}

// ResubOnce performs one simulation-guided resubstitution pass. Every
// node carries its complete truth table over the primary inputs (the
// paper's ref [10] paradigm made exact: benchmark functions are small
// enough for exhaustive signatures). A node is re-expressed through
// divisors — earlier nodes in topological order, which are guaranteed to
// lie outside its transitive fanout — when the substitution frees more
// MFFC nodes than it adds.
//
// Graphs with more than tt.MaxVars inputs are returned unchanged: exact
// signatures are unavailable and this implementation deliberately avoids
// unsound approximate matching.
func ResubOnce(g *aig.AIG, opts ResubOptions) *aig.AIG {
	return instrumentPass("resub", g, func() *aig.AIG { return resubOnce(g, opts) })
}

func resubOnce(g *aig.AIG, opts ResubOptions) *aig.AIG {
	if g.NumPIs() > tt.MaxVars {
		return g
	}
	tabs := g.SimAll()
	refs := g.RefCounts()
	decisions := make(map[int]decision)

	// Global hash index for 0-resub: table hash -> node ids (ascending).
	hashIndex := make(map[uint64][]int, g.NumObjs())
	hashes := make([]uint64, g.NumObjs())
	notHashes := make([]uint64, g.NumObjs())
	for id := 0; id < g.NumObjs(); id++ {
		hashes[id] = ttHash(tabs[id])
		notHashes[id] = ttHash(tabs[id].Not())
		hashIndex[hashes[id]] = append(hashIndex[hashes[id]], id)
	}

	maxDiv := opts.maxDivisors()
	depth := opts.depth()
	supp := structuralSupport(g)

	for id := g.NumPIs() + 1; id < g.NumObjs(); id++ {
		if refs[id] == 0 {
			continue
		}
		target := tabs[id]
		mffc := g.MFFCSize(id, refs)

		// --- 0-resub: an existing node already computes the function.
		if dec, ok := findZeroResub(g, id, target, hashes, notHashes, hashIndex, tabs); ok {
			decisions[id] = dec
			continue
		}
		if mffc < 2 && !opts.ZeroCost {
			continue
		}
		if depth < 1 {
			continue
		}

		divs := collectDivisors(id, supp, maxDiv)

		// --- 1-resub: one fresh gate over two divisors (XOR costs 3
		// AND nodes in an AIG and is gated accordingly).
		minGain := 1
		if opts.ZeroCost {
			minGain = 0
		}
		if mffc-1 >= minGain {
			if dec, cost, ok := findOneResub(target, divs, tabs); ok && mffc-cost >= minGain {
				decisions[id] = dec
				continue
			}
		}
		// --- 2-resub: AND3 / OR3 shapes (two fresh gates).
		if depth >= 2 && mffc-2 >= minGain {
			if dec, ok := findTripleResub(target, divs, tabs); ok {
				decisions[id] = dec
			}
		}
	}
	return keepSmaller(g, rebuild(g, decisions), true)
}

// Resub iterates resubstitution passes to convergence.
func Resub(g *aig.AIG, opts ResubOptions) *aig.AIG {
	cur := g
	for i := 0; i < 8; i++ {
		next := ResubOnce(cur, opts)
		if next.NumAnds() >= cur.NumAnds() {
			return keepSmaller(cur, next, opts.ZeroCost)
		}
		cur = next
	}
	return cur
}

func ttHash(t tt.TT) uint64 {
	h := uint64(1469598103934665603)
	for _, w := range t.Words() {
		h ^= w
		h *= 1099511628211
	}
	return h
}

func findZeroResub(g *aig.AIG, id int, target tt.TT, hashes, notHashes []uint64, index map[uint64][]int, tabs []tt.TT) (decision, bool) {
	for _, cand := range index[hashes[id]] {
		if cand >= id {
			break
		}
		if tabs[cand].Equal(target) {
			return litDecision(cand, false), true
		}
	}
	for _, cand := range index[notHashes[id]] {
		if cand >= id {
			break
		}
		if tabs[cand].Equal(target.Not()) {
			return litDecision(cand, true), true
		}
	}
	if target.IsConst0() {
		return constDecision(false), true
	}
	if target.IsConst1() {
		return constDecision(true), true
	}
	return decision{}, false
}

// divisor is a candidate node with a chosen polarity.
type divisor struct {
	node  int
	compl bool
}

// structuralSupport computes per-node PI-support bitmasks by fanin union
// (a superset of functional support, cheap and good enough for divisor
// filtering). Inputs are <= 16 by SimAll's precondition.
func structuralSupport(g *aig.AIG) []uint32 {
	supp := make([]uint32, g.NumObjs())
	for i := 1; i <= g.NumPIs(); i++ {
		supp[i] = 1 << uint(i-1)
	}
	for id := g.NumPIs() + 1; id < g.NumObjs(); id++ {
		f0, f1 := g.Fanins(id)
		supp[id] = supp[f0.Node()] | supp[f1.Node()]
	}
	return supp
}

// collectDivisors gathers up to max divisor nodes for the target:
// earlier-id nodes (outside the TFO by topological order) whose support
// is a subset of the target's, most recent first for locality.
func collectDivisors(id int, supp []uint32, max int) []int {
	targetSupp := supp[id]
	var divs []int
	for cand := id - 1; cand > 0 && len(divs) < max; cand-- {
		if supp[cand]&^targetSupp == 0 && supp[cand] != 0 {
			divs = append(divs, cand)
		}
	}
	return divs
}

// findOneResub searches for target == op(d1, d2) over AND/OR (with
// polarities) and XOR, returning the decision and its cost in fresh AND
// nodes (1 for AND/OR, 3 for XOR).
func findOneResub(target tt.TT, divs []int, tabs []tt.TT) (decision, int, bool) {
	notTarget := target.Not()
	// AND candidates: divisor literals whose function covers the target.
	var andList []divisor
	// OR candidates: divisor literals covered by the target.
	var orList []divisor
	for _, d := range divs {
		t := tabs[d]
		if target.AndNot(t).IsConst0() {
			andList = append(andList, divisor{d, false})
		}
		if notTarget.AndNot(t.Not()).IsConst0() { // target ⊆ ~t
			andList = append(andList, divisor{d, true})
		}
		if t.AndNot(target).IsConst0() {
			orList = append(orList, divisor{d, false})
		}
		if t.Not().AndNot(target).IsConst0() {
			orList = append(orList, divisor{d, true})
		}
	}
	if dec, ok := matchPairs(target, andList, tabs, true); ok {
		return dec, 1, true
	}
	if dec, ok := matchPairs(target, orList, tabs, false); ok {
		return dec, 1, true
	}
	// XOR: hash map from divisor table to literal.
	xorIndex := make(map[uint64][]int, len(divs))
	for _, d := range divs {
		xorIndex[ttHash(tabs[d])] = append(xorIndex[ttHash(tabs[d])], d)
	}
	for _, d1 := range divs {
		want := tabs[d1].Xor(target)
		for _, d2 := range xorIndex[ttHash(want)] {
			if d2 == d1 {
				continue
			}
			if tabs[d2].Equal(want) {
				return gateDecision(gateXor, divisor{d1, false}, divisor{d2, false}), 3, true
			}
		}
	}
	return decision{}, 0, false
}

// matchPairs finds d1 op d2 == target within a pre-filtered literal list.
func matchPairs(target tt.TT, list []divisor, tabs []tt.TT, isAnd bool) (decision, bool) {
	const capPairs = 60
	if len(list) > capPairs {
		list = list[:capPairs]
	}
	for i := 0; i < len(list); i++ {
		ti := divTT(tabs, list[i])
		for j := i + 1; j < len(list); j++ {
			if list[i].node == list[j].node {
				continue
			}
			tj := divTT(tabs, list[j])
			var combined tt.TT
			if isAnd {
				combined = ti.And(tj)
			} else {
				combined = ti.Or(tj)
			}
			if combined.Equal(target) {
				if isAnd {
					return gateDecision(gateAnd, list[i], list[j]), true
				}
				return gateDecision(gateOr, list[i], list[j]), true
			}
		}
	}
	return decision{}, false
}

// findTripleResub searches AND3 / OR3 shapes over the filtered lists.
func findTripleResub(target tt.TT, divs []int, tabs []tt.TT) (decision, bool) {
	notTarget := target.Not()
	var andList, orList []divisor
	for _, d := range divs {
		t := tabs[d]
		if target.AndNot(t).IsConst0() {
			andList = append(andList, divisor{d, false})
		}
		if notTarget.AndNot(t.Not()).IsConst0() {
			andList = append(andList, divisor{d, true})
		}
		if t.AndNot(target).IsConst0() {
			orList = append(orList, divisor{d, false})
		}
		if t.Not().AndNot(target).IsConst0() {
			orList = append(orList, divisor{d, true})
		}
	}
	const capTriples = 24
	if len(andList) > capTriples {
		andList = andList[:capTriples]
	}
	if len(orList) > capTriples {
		orList = orList[:capTriples]
	}
	if dec, ok := matchTriples(target, andList, tabs, true); ok {
		return dec, true
	}
	return matchTriples(target, orList, tabs, false)
}

func matchTriples(target tt.TT, list []divisor, tabs []tt.TT, isAnd bool) (decision, bool) {
	for i := 0; i < len(list); i++ {
		ti := divTT(tabs, list[i])
		for j := i + 1; j < len(list); j++ {
			tj := divTT(tabs, list[j])
			var tij tt.TT
			if isAnd {
				tij = ti.And(tj)
			} else {
				tij = ti.Or(tj)
			}
			for k := j + 1; k < len(list); k++ {
				if list[i].node == list[j].node || list[j].node == list[k].node || list[i].node == list[k].node {
					continue
				}
				tk := divTT(tabs, list[k])
				var combined tt.TT
				if isAnd {
					combined = tij.And(tk)
				} else {
					combined = tij.Or(tk)
				}
				if combined.Equal(target) {
					kind := gateAnd3
					if !isAnd {
						kind = gateOr3
					}
					return gateDecision3(kind, list[i], list[j], list[k]), true
				}
			}
		}
	}
	return decision{}, false
}

func divTT(tabs []tt.TT, d divisor) tt.TT {
	if d.compl {
		return tabs[d.node].Not()
	}
	return tabs[d.node]
}

type gateKind int

const (
	gateAnd gateKind = iota
	gateOr
	gateXor
	gateAnd3
	gateOr3
)

// gateDecision builds the mini structure target = op(d1, d2).
func gateDecision(kind gateKind, d1, d2 divisor) decision {
	mini := aig.New(2)
	a := mini.PI(0).NotCond(d1.compl)
	b := mini.PI(1).NotCond(d2.compl)
	var out aig.Lit
	switch kind {
	case gateAnd:
		out = mini.And(a, b)
	case gateOr:
		out = mini.Or(a, b)
	case gateXor:
		out = mini.Xor(a, b)
	default:
		panic("opt: bad binary gate kind")
	}
	mini.AddPO(out)
	return decision{mini: mini, leaves: []int{d1.node, d2.node}}
}

func gateDecision3(kind gateKind, d1, d2, d3 divisor) decision {
	mini := aig.New(3)
	a := mini.PI(0).NotCond(d1.compl)
	b := mini.PI(1).NotCond(d2.compl)
	c := mini.PI(2).NotCond(d3.compl)
	var out aig.Lit
	switch kind {
	case gateAnd3:
		out = mini.And(mini.And(a, b), c)
	case gateOr3:
		out = mini.Or(mini.Or(a, b), c)
	default:
		panic("opt: bad ternary gate kind")
	}
	mini.AddPO(out)
	return decision{mini: mini, leaves: []int{d1.node, d2.node, d3.node}}
}
