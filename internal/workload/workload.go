// Package workload generates the benchmark function suite: 100 function
// specifications mirroring the categories of the IWLS 2024 Programming
// Contest set the paper evaluates on — random functions, cryptographic
// components, sorting networks, arithmetic operations, and neural-network
// components — all as multi-output truth tables small enough for the full
// synthesis-metrics-optimization pipeline.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/tt"
)

// Spec is one benchmark function: a named multi-output truth table.
type Spec struct {
	Name     string
	Category string
	Outputs  []tt.TT
}

// NumInputs returns the input count of the spec.
func (s Spec) NumInputs() int { return s.Outputs[0].NumVars() }

// Categories lists the suite's categories in canonical order.
func Categories() []string {
	return []string{"random", "crypto", "sorting", "arithmetic", "neural", "control"}
}

// Suite generates the full 100-spec benchmark suite deterministically
// from the seed (randomized categories draw from it; structured ones are
// fixed).
func Suite(seed int64) []Spec {
	r := rand.New(rand.NewSource(seed))
	var specs []Spec
	add := func(category, name string, outputs ...tt.TT) {
		specs = append(specs, Spec{Name: name, Category: category, Outputs: outputs})
	}

	// --- random: 25 random functions of varying arity and output count.
	for i := 0; i < 25; i++ {
		n := 4 + i%5 // 4..8 inputs
		outs := 1 + i%3
		fs := make([]tt.TT, outs)
		for j := range fs {
			fs[j] = tt.Random(n, r)
		}
		add("random", fmt.Sprintf("rand%02d_n%d_o%d", i, n, outs), fs...)
	}

	// --- crypto: 20 specs.
	for bit := 0; bit < 4; bit++ {
		add("crypto", fmt.Sprintf("present_sbox_b%d", bit), PresentSboxBit(bit))
	}
	add("crypto", "present_sbox_all", PresentSboxBit(0), PresentSboxBit(1), PresentSboxBit(2), PresentSboxBit(3))
	for bit := 0; bit < 8; bit++ {
		add("crypto", fmt.Sprintf("aes_sbox_b%d", bit), AESSboxBit(bit))
	}
	for n := 5; n <= 9; n++ {
		add("crypto", fmt.Sprintf("parity%d", n), Parity(n))
	}
	add("crypto", "bent_ip6", InnerProductBent(6))
	add("crypto", "bent_ip8", InnerProductBent(8))

	// --- sorting: 15 specs (sorting networks on bits are threshold
	// functions: output i of an n-sorter is 1 iff at least n-i inputs
	// are 1).
	for _, n := range []int{5, 7, 9} {
		outs := make([]tt.TT, n)
		for i := 0; i < n; i++ {
			outs[i] = Threshold(n, n-i)
		}
		add("sorting", fmt.Sprintf("sorter%d", n), outs...)
	}
	for _, n := range []int{3, 5, 7, 9} {
		add("sorting", fmt.Sprintf("median%d", n), Threshold(n, n/2+1))
	}
	for _, n := range []int{6, 8} {
		for _, k := range []int{2, n - 2} {
			add("sorting", fmt.Sprintf("kth%d_of%d", k, n), Threshold(n, k))
		}
	}
	add("sorting", "max8", Threshold(8, 1), Threshold(8, 8))
	for _, n := range []int{6, 8, 10} {
		add("sorting", fmt.Sprintf("exact%d_half", n), ExactK(n, n/2))
	}

	// --- arithmetic: 20 specs.
	for _, w := range []int{2, 3, 4} {
		add("arithmetic", fmt.Sprintf("adder%d", w), Adder(w)...)
	}
	for _, w := range []int{2, 3} {
		add("arithmetic", fmt.Sprintf("mult%dx%d", w, w), Multiplier(w, w)...)
	}
	add("arithmetic", "mult2x3", Multiplier(2, 3)...)
	for _, w := range []int{3, 4, 5} {
		add("arithmetic", fmt.Sprintf("comp%d", w), Comparator(w))
	}
	for _, n := range []int{5, 7, 9} {
		add("arithmetic", fmt.Sprintf("popcount%d", n), Popcount(n)...)
	}
	for _, w := range []int{4, 6, 8} {
		add("arithmetic", fmt.Sprintf("inc%d", w), Incrementer(w)...)
	}
	add("arithmetic", "fulladder", FullAdder()...)
	add("arithmetic", "sqrbit4", SquareMiddleBits(4)...)
	for _, w := range []int{3, 4} {
		add("arithmetic", fmt.Sprintf("eq%d", w), Equality(w))
	}
	add("arithmetic", "popcount11", Popcount(11)...)

	// --- neural: 12 threshold (perceptron) gates with random integer
	// weights.
	for i := 0; i < 12; i++ {
		n := 5 + i%5 // 5..9 inputs
		w := make([]int, n)
		for j := range w {
			w[j] = r.Intn(7) - 3 // weights in [-3, 3]
		}
		total := 0
		for _, x := range w {
			if x > 0 {
				total += x
			}
		}
		th := 1
		if total > 1 {
			th = 1 + r.Intn(total)
		}
		add("neural", fmt.Sprintf("perceptron%02d_n%d", i, n), Perceptron(w, th))
	}

	// --- control: remaining specs to reach 100.
	for _, sel := range []int{2, 3} {
		add("control", fmt.Sprintf("mux%d", 1<<sel), Mux(sel))
	}
	for _, n := range []int{2, 3} {
		add("control", fmt.Sprintf("decoder%d", n), Decoder(n)...)
	}
	for _, n := range []int{5, 7} {
		add("control", fmt.Sprintf("prienc%d", n), PriorityEncoder(n)...)
	}
	add("control", "onehot6", OneHot(6))
	add("control", "gray4", GrayEncoder(4)...)

	if len(specs) != 100 {
		panic(fmt.Sprintf("workload: suite has %d specs, want 100", len(specs)))
	}
	return specs
}

// FilterByInputs keeps specs with at most maxInputs inputs, mirroring the
// paper's "87 of 100 synthesized due to scalability constraints".
func FilterByInputs(specs []Spec, maxInputs int) []Spec {
	var out []Spec
	for _, s := range specs {
		if s.NumInputs() <= maxInputs {
			out = append(out, s)
		}
	}
	return out
}

// --- Function constructors ----------------------------------------------

// Threshold returns the symmetric function "at least k of n inputs are 1".
func Threshold(n, k int) tt.TT {
	f := tt.New(n)
	for m := 0; m < 1<<n; m++ {
		if popcount(m) >= k {
			f.SetBit(m, true)
		}
	}
	return f
}

// ExactK returns the symmetric function "exactly k of n inputs are 1".
func ExactK(n, k int) tt.TT {
	f := tt.New(n)
	for m := 0; m < 1<<n; m++ {
		if popcount(m) == k {
			f.SetBit(m, true)
		}
	}
	return f
}

// Parity returns the n-input XOR.
func Parity(n int) tt.TT {
	f := tt.New(n)
	for m := 0; m < 1<<n; m++ {
		if popcount(m)%2 == 1 {
			f.SetBit(m, true)
		}
	}
	return f
}

// InnerProductBent returns the bent function x1*x2 + x3*x4 + ... (mod 2)
// over an even number of inputs.
func InnerProductBent(n int) tt.TT {
	if n%2 != 0 {
		panic("workload: bent function needs even arity")
	}
	f := tt.New(n)
	for m := 0; m < 1<<n; m++ {
		acc := 0
		for i := 0; i < n; i += 2 {
			acc ^= (m >> uint(i) & 1) & (m >> uint(i+1) & 1)
		}
		if acc == 1 {
			f.SetBit(m, true)
		}
	}
	return f
}

// Perceptron returns the threshold gate sum(w_i x_i) >= th.
func Perceptron(weights []int, th int) tt.TT {
	n := len(weights)
	f := tt.New(n)
	for m := 0; m < 1<<n; m++ {
		s := 0
		for i, w := range weights {
			if m>>uint(i)&1 == 1 {
				s += w
			}
		}
		if s >= th {
			f.SetBit(m, true)
		}
	}
	return f
}

// Adder returns the w+1 sum bits of a w-bit + w-bit adder (inputs: a then
// b, little-endian).
func Adder(w int) []tt.TT {
	n := 2 * w
	outs := make([]tt.TT, w+1)
	for i := range outs {
		outs[i] = tt.New(n)
	}
	for m := 0; m < 1<<n; m++ {
		a := m & (1<<w - 1)
		b := m >> uint(w)
		s := a + b
		for i := 0; i <= w; i++ {
			if s>>uint(i)&1 == 1 {
				outs[i].SetBit(m, true)
			}
		}
	}
	return outs
}

// FullAdder returns the carry and sum of a 1-bit full adder — the
// paper's Figure 1 function.
func FullAdder() []tt.TT {
	maj := Threshold(3, 2)
	sum := Parity(3)
	return []tt.TT{maj, sum}
}

// Multiplier returns the wa+wb product bits of a wa-bit x wb-bit
// multiplier.
func Multiplier(wa, wb int) []tt.TT {
	n := wa + wb
	outs := make([]tt.TT, wa+wb)
	for i := range outs {
		outs[i] = tt.New(n)
	}
	for m := 0; m < 1<<n; m++ {
		a := m & (1<<wa - 1)
		b := m >> uint(wa)
		p := a * b
		for i := 0; i < wa+wb; i++ {
			if p>>uint(i)&1 == 1 {
				outs[i].SetBit(m, true)
			}
		}
	}
	return outs
}

// Comparator returns a < b over two w-bit operands.
func Comparator(w int) tt.TT {
	n := 2 * w
	f := tt.New(n)
	for m := 0; m < 1<<n; m++ {
		a := m & (1<<w - 1)
		b := m >> uint(w)
		if a < b {
			f.SetBit(m, true)
		}
	}
	return f
}

// Equality returns a == b over two w-bit operands.
func Equality(w int) tt.TT {
	n := 2 * w
	f := tt.New(n)
	for m := 0; m < 1<<n; m++ {
		if m&(1<<w-1) == m>>uint(w) {
			f.SetBit(m, true)
		}
	}
	return f
}

// Popcount returns the bits of the population count of n inputs.
func Popcount(n int) []tt.TT {
	bitsNeeded := 1
	for 1<<bitsNeeded <= n {
		bitsNeeded++
	}
	outs := make([]tt.TT, bitsNeeded)
	for i := range outs {
		outs[i] = tt.New(n)
	}
	for m := 0; m < 1<<n; m++ {
		c := popcount(m)
		for i := 0; i < bitsNeeded; i++ {
			if c>>uint(i)&1 == 1 {
				outs[i].SetBit(m, true)
			}
		}
	}
	return outs
}

// Incrementer returns the w bits of x+1 mod 2^w.
func Incrementer(w int) []tt.TT {
	outs := make([]tt.TT, w)
	for i := range outs {
		outs[i] = tt.New(w)
	}
	for m := 0; m < 1<<w; m++ {
		s := (m + 1) & (1<<w - 1)
		for i := 0; i < w; i++ {
			if s>>uint(i)&1 == 1 {
				outs[i].SetBit(m, true)
			}
		}
	}
	return outs
}

// SquareMiddleBits returns the middle bits of x^2 for a w-bit input.
func SquareMiddleBits(w int) []tt.TT {
	outs := make([]tt.TT, w)
	for i := range outs {
		outs[i] = tt.New(w)
	}
	for m := 0; m < 1<<w; m++ {
		sq := m * m
		for i := 0; i < w; i++ {
			if sq>>uint(i+w/2)&1 == 1 {
				outs[i].SetBit(m, true)
			}
		}
	}
	return outs
}

// Mux returns the 2^sel:1 multiplexer: sel select inputs followed by
// 2^sel data inputs.
func Mux(sel int) tt.TT {
	data := 1 << sel
	n := sel + data
	f := tt.New(n)
	for m := 0; m < 1<<n; m++ {
		s := m & (1<<sel - 1) // select lines are inputs 0..sel-1
		if m>>uint(sel+s)&1 == 1 {
			f.SetBit(m, true)
		}
	}
	return f
}

// Decoder returns the 2^n one-hot outputs of an n-input decoder.
func Decoder(n int) []tt.TT {
	outs := make([]tt.TT, 1<<n)
	for i := range outs {
		outs[i] = tt.New(n)
		outs[i].SetBit(i, true)
	}
	return outs
}

// PriorityEncoder returns the index bits of the highest set input plus a
// valid flag, for n inputs.
func PriorityEncoder(n int) []tt.TT {
	bitsNeeded := 1
	for 1<<bitsNeeded < n {
		bitsNeeded++
	}
	outs := make([]tt.TT, bitsNeeded+1)
	for i := range outs {
		outs[i] = tt.New(n)
	}
	for m := 1; m < 1<<n; m++ {
		hi := 0
		for i := 0; i < n; i++ {
			if m>>uint(i)&1 == 1 {
				hi = i
			}
		}
		for i := 0; i < bitsNeeded; i++ {
			if hi>>uint(i)&1 == 1 {
				outs[i].SetBit(m, true)
			}
		}
		outs[bitsNeeded].SetBit(m, true) // valid
	}
	return outs
}

// OneHot returns the predicate "exactly one input is 1".
func OneHot(n int) tt.TT { return ExactK(n, 1) }

// GrayEncoder returns the w-bit binary-to-Gray converter.
func GrayEncoder(w int) []tt.TT {
	outs := make([]tt.TT, w)
	for i := range outs {
		outs[i] = tt.New(w)
	}
	for m := 0; m < 1<<w; m++ {
		gray := m ^ (m >> 1)
		for i := 0; i < w; i++ {
			if gray>>uint(i)&1 == 1 {
				outs[i].SetBit(m, true)
			}
		}
	}
	return outs
}

func popcount(m int) int {
	c := 0
	for ; m != 0; m &= m - 1 {
		c++
	}
	return c
}
