package workload

import (
	"testing"

	"repro/internal/tt"
)

func TestSuiteShape(t *testing.T) {
	specs := Suite(1)
	if len(specs) != 100 {
		t.Fatalf("suite has %d specs", len(specs))
	}
	names := make(map[string]bool)
	counts := make(map[string]int)
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate spec name %q", s.Name)
		}
		names[s.Name] = true
		counts[s.Category]++
		if len(s.Outputs) == 0 {
			t.Errorf("%s: no outputs", s.Name)
		}
		n := s.NumInputs()
		if n < 2 || n > 12 {
			t.Errorf("%s: %d inputs out of range", s.Name, n)
		}
		for _, o := range s.Outputs {
			if o.NumVars() != n {
				t.Errorf("%s: inconsistent output arities", s.Name)
			}
		}
	}
	for _, c := range Categories() {
		if counts[c] == 0 {
			t.Errorf("category %s empty", c)
		}
	}
}

func TestSuiteDeterminism(t *testing.T) {
	a, b := Suite(7), Suite(7)
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatal("suite order not deterministic")
		}
		for j := range a[i].Outputs {
			if !a[i].Outputs[j].Equal(b[i].Outputs[j]) {
				t.Fatalf("%s output %d differs across runs", a[i].Name, j)
			}
		}
	}
	c := Suite(8)
	diff := false
	for i := range a {
		for j := range a[i].Outputs {
			if !a[i].Outputs[j].Equal(c[i].Outputs[j]) {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical suites")
	}
}

func TestFilterByInputs(t *testing.T) {
	specs := Suite(1)
	small := FilterByInputs(specs, 6)
	if len(small) == 0 || len(small) >= len(specs) {
		t.Errorf("filter kept %d of %d", len(small), len(specs))
	}
	for _, s := range small {
		if s.NumInputs() > 6 {
			t.Errorf("%s slipped through filter", s.Name)
		}
	}
}

func TestThresholdAndExactK(t *testing.T) {
	th := Threshold(4, 2)
	for m := 0; m < 16; m++ {
		want := popcount(m) >= 2
		if th.Bit(m) != want {
			t.Fatalf("Threshold(4,2) wrong at %d", m)
		}
	}
	ex := ExactK(4, 2)
	for m := 0; m < 16; m++ {
		if ex.Bit(m) != (popcount(m) == 2) {
			t.Fatalf("ExactK wrong at %d", m)
		}
	}
	if !Threshold(3, 2).Equal(FullAdder()[0]) {
		t.Error("full adder carry is not maj3")
	}
}

func TestParityIsXor(t *testing.T) {
	p := Parity(5)
	want := tt.Var(0, 5)
	for v := 1; v < 5; v++ {
		want = want.Xor(tt.Var(v, 5))
	}
	if !p.Equal(want) {
		t.Error("Parity != XOR chain")
	}
}

func TestAdder(t *testing.T) {
	outs := Adder(3)
	if len(outs) != 4 {
		t.Fatalf("adder3 has %d outputs", len(outs))
	}
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			m := a | b<<3
			s := a + b
			for i := 0; i < 4; i++ {
				if outs[i].Bit(m) != (s>>uint(i)&1 == 1) {
					t.Fatalf("adder3 bit %d wrong at a=%d b=%d", i, a, b)
				}
			}
		}
	}
}

func TestMultiplier(t *testing.T) {
	outs := Multiplier(3, 2)
	for a := 0; a < 8; a++ {
		for b := 0; b < 4; b++ {
			m := a | b<<3
			p := a * b
			for i := range outs {
				if outs[i].Bit(m) != (p>>uint(i)&1 == 1) {
					t.Fatalf("mult bit %d wrong at a=%d b=%d", i, a, b)
				}
			}
		}
	}
}

func TestComparator(t *testing.T) {
	f := Comparator(3)
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			if f.Bit(a|b<<3) != (a < b) {
				t.Fatalf("comp wrong at a=%d b=%d", a, b)
			}
		}
	}
}

func TestPopcountBits(t *testing.T) {
	outs := Popcount(5)
	if len(outs) != 3 {
		t.Fatalf("popcount5 needs 3 bits, got %d", len(outs))
	}
	for m := 0; m < 32; m++ {
		c := popcount(m)
		for i := range outs {
			if outs[i].Bit(m) != (c>>uint(i)&1 == 1) {
				t.Fatalf("popcount bit %d wrong at %d", i, m)
			}
		}
	}
}

func TestMuxDecoder(t *testing.T) {
	f := Mux(2) // 4:1 mux, 6 inputs
	for m := 0; m < 64; m++ {
		sel := m & 3
		want := m>>uint(2+sel)&1 == 1
		if f.Bit(m) != want {
			t.Fatalf("mux4 wrong at %d", m)
		}
	}
	dec := Decoder(2)
	for m := 0; m < 4; m++ {
		for i := range dec {
			if dec[i].Bit(m) != (i == m) {
				t.Fatalf("decoder wrong at %d/%d", m, i)
			}
		}
	}
}

func TestPriorityEncoder(t *testing.T) {
	outs := PriorityEncoder(5)
	valid := outs[len(outs)-1]
	if valid.Bit(0) {
		t.Error("valid should be 0 on empty input")
	}
	// Input 0b10110: highest set = 4 -> index 100.
	m := 0b10110
	if !outs[2].Bit(m) || outs[1].Bit(m) || outs[0].Bit(m) {
		t.Error("priority index wrong")
	}
	if !valid.Bit(m) {
		t.Error("valid wrong")
	}
}

func TestGray(t *testing.T) {
	outs := GrayEncoder(3)
	for m := 0; m < 8; m++ {
		g := m ^ (m >> 1)
		for i := range outs {
			if outs[i].Bit(m) != (g>>uint(i)&1 == 1) {
				t.Fatalf("gray bit %d wrong at %d", i, m)
			}
		}
	}
}

func TestPresentSbox(t *testing.T) {
	// Check a few table entries bitwise.
	for x, want := range presentSbox {
		got := 0
		for b := 0; b < 4; b++ {
			if PresentSboxBit(b).Bit(x) {
				got |= 1 << uint(b)
			}
		}
		if got != want {
			t.Fatalf("present sbox(%d) = %#x, want %#x", x, got, want)
		}
	}
}

func TestAESSboxKnownValues(t *testing.T) {
	known := map[int]int{
		0x00: 0x63, 0x01: 0x7c, 0x02: 0x77, 0x10: 0xca,
		0x53: 0xed, 0xff: 0x16, 0xc9: 0xdd,
	}
	for x, want := range known {
		if aesSbox[x] != want {
			t.Errorf("aes sbox(%#02x) = %#02x, want %#02x", x, aesSbox[x], want)
		}
	}
	// S-box must be a permutation.
	seen := make(map[int]bool)
	for _, v := range aesSbox {
		if seen[v] {
			t.Fatal("aes sbox not a permutation")
		}
		seen[v] = true
	}
}

func TestGFArithmetic(t *testing.T) {
	// 0x53 * 0xCA = 0x01 in GF(2^8) (classic inverse pair).
	if got := gfMul(0x53, 0xCA); got != 0x01 {
		t.Errorf("gfMul(53,CA) = %#x", got)
	}
	if gfInv(0x53) != 0xCA || gfInv(0xCA) != 0x53 {
		t.Error("gfInv pair wrong")
	}
	if gfInv(0) != 0 || gfInv(1) != 1 {
		t.Error("gfInv corner cases wrong")
	}
	for x := 1; x < 256; x++ {
		if gfMul(x, gfInv(x)) != 1 {
			t.Fatalf("gfInv(%d) is not an inverse", x)
		}
	}
}

func TestBentFunctionProperty(t *testing.T) {
	// A bent function on n vars has Hamming weight 2^(n-1) ± 2^(n/2-1).
	for _, n := range []int{6, 8} {
		f := InnerProductBent(n)
		w := f.CountOnes()
		lo := 1<<(n-1) - 1<<(n/2-1)
		hi := 1<<(n-1) + 1<<(n/2-1)
		if w != lo && w != hi {
			t.Errorf("bent%d weight %d, want %d or %d", n, w, lo, hi)
		}
	}
}
