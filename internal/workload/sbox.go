package workload

import "repro/internal/tt"

// presentSbox is the PRESENT cipher's 4-bit S-box (Bogdanov et al.,
// CHES 2007).
var presentSbox = [16]int{
	0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
	0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
}

// PresentSboxBit returns output bit `bit` (0..3) of the PRESENT S-box as
// a 4-input truth table.
func PresentSboxBit(bit int) tt.TT {
	f := tt.New(4)
	for x := 0; x < 16; x++ {
		if presentSbox[x]>>uint(bit)&1 == 1 {
			f.SetBit(x, true)
		}
	}
	return f
}

// gfMul multiplies in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.
func gfMul(a, b int) int {
	p := 0
	for i := 0; i < 8; i++ {
		if b&1 == 1 {
			p ^= a
		}
		carry := a & 0x80
		a = (a << 1) & 0xFF
		if carry != 0 {
			a ^= 0x1B
		}
		b >>= 1
	}
	return p
}

// gfInv computes the multiplicative inverse in GF(2^8) (0 maps to 0),
// via x^254.
func gfInv(x int) int {
	if x == 0 {
		return 0
	}
	// x^254 by square-and-multiply: 254 = 0b11111110.
	result := 1
	base := x
	for e := 254; e > 0; e >>= 1 {
		if e&1 == 1 {
			result = gfMul(result, base)
		}
		base = gfMul(base, base)
	}
	return result
}

// aesSboxTable computes the AES S-box from first principles: GF(2^8)
// inversion followed by the affine transform.
func aesSboxTable() [256]int {
	var sbox [256]int
	for x := 0; x < 256; x++ {
		inv := gfInv(x)
		y := 0
		for i := 0; i < 8; i++ {
			bit := (inv >> uint(i)) ^ (inv >> uint((i+4)%8)) ^ (inv >> uint((i+5)%8)) ^
				(inv >> uint((i+6)%8)) ^ (inv >> uint((i+7)%8)) ^ (0x63 >> uint(i))
			y |= (bit & 1) << uint(i)
		}
		sbox[x] = y
	}
	return sbox
}

var aesSbox = aesSboxTable()

// AESSboxBit returns output bit `bit` (0..7) of the AES S-box as an
// 8-input truth table.
func AESSboxBit(bit int) tt.TT {
	f := tt.New(8)
	for x := 0; x < 256; x++ {
		if aesSbox[x]>>uint(bit)&1 == 1 {
			f.SetBit(x, true)
		}
	}
	return f
}
