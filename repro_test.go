package repro

import (
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/tt"
	"repro/internal/workload"
)

func fullAdderSpec() []tt.TT { return workload.FullAdder() }

func TestSynthesizeAll(t *testing.T) {
	vs := SynthesizeAll(fullAdderSpec())
	if len(vs) != 7 {
		t.Fatalf("got %d variants", len(vs))
	}
	for _, v := range vs[1:] {
		if idx, err := aig.Equivalent(vs[0].AIG, v.AIG); err != nil || idx != -1 {
			t.Fatalf("%s not equivalent (idx=%d err=%v)", v.Recipe, idx, err)
		}
	}
}

func TestDiversityMatrix(t *testing.T) {
	vs := SynthesizeAll(fullAdderSpec())
	m := DiversityMatrix(vs)
	if len(m) != 21 {
		t.Fatalf("got %d pairs", len(m))
	}
	for i := 1; i < len(m); i++ {
		if m[i].Score > m[i-1].Score {
			t.Fatal("matrix not sorted descending")
		}
	}
	for _, p := range m {
		if p.Score < 0 {
			t.Fatalf("negative RRR score %f", p.Score)
		}
	}
}

func TestSelectDiverse(t *testing.T) {
	r := rand.New(rand.NewSource(151))
	vs := SynthesizeAll([]tt.TT{tt.Random(6, r)})
	sel := SelectDiverse(vs, 3)
	if len(sel) != 3 {
		t.Fatalf("selected %d", len(sel))
	}
	seen := map[string]bool{}
	for _, v := range sel {
		if seen[v.Recipe] {
			t.Fatal("duplicate selection")
		}
		seen[v.Recipe] = true
	}
	if got := SelectDiverse(vs, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := SelectDiverse(vs, 99); len(got) != len(vs) {
		t.Error("k>=len should return all")
	}
}

func TestOptimizeAndBest(t *testing.T) {
	vs := SynthesizeAll(fullAdderSpec())
	og, err := Optimize(vs[0].AIG, "dc2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if og.NumAnds() > vs[0].AIG.NumAnds() {
		t.Error("optimization grew the AIG")
	}
	best, recipe, err := OptimizeBest(vs, "dc2", 1)
	if err != nil || best == nil || recipe == "" {
		t.Fatalf("OptimizeBest: %v", err)
	}
	if best.NumAnds() > og.NumAnds() {
		t.Error("best-of-all worse than single variant")
	}
	if _, err := Optimize(vs[0].AIG, "bogus", 1); err == nil {
		t.Error("unknown flow should error")
	}
	if _, _, err := OptimizeBest(nil, "dc2", 1); err == nil {
		t.Error("empty variants should error")
	}
}
