package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
)

// benchStageSink accumulates the telemetry-derived per-stage seconds
// that reportStageTimings attaches to pipeline benchmarks. When the
// BENCH_JSON environment variable names a file, TestMain writes the
// collected breakdown there after the run — `make bench` uses this to
// produce BENCH_pipeline.json.
var benchStageSink = struct {
	sync.Mutex
	stages map[string]map[string]float64 // benchmark -> stage label -> s/op
}{}

func recordStageSeconds(bench, stage string, secPerOp float64) {
	benchStageSink.Lock()
	defer benchStageSink.Unlock()
	if benchStageSink.stages == nil {
		benchStageSink.stages = map[string]map[string]float64{}
	}
	if benchStageSink.stages[bench] == nil {
		benchStageSink.stages[bench] = map[string]float64{}
	}
	benchStageSink.stages[bench][stage] = secPerOp
}

// benchPipelineReport is the BENCH_pipeline.json schema. It carries no
// timestamps or host details: two runs differ only in the measured
// seconds, so diffs show performance movement and nothing else.
type benchPipelineReport struct {
	Schema     string               `json:"schema"`
	Benchmarks []benchPipelineEntry `json:"benchmarks"`
}

type benchPipelineEntry struct {
	Name string `json:"name"`
	// StageSeconds maps harness stage labels (synthesis, profiling,
	// optimization, metrics) to wall-clock seconds per benchmark op.
	StageSeconds map[string]float64 `json:"stage_seconds"`
}

func writeBenchJSON(path string) error {
	benchStageSink.Lock()
	defer benchStageSink.Unlock()
	report := benchPipelineReport{Schema: "bench-pipeline/v1"}
	names := make([]string, 0, len(benchStageSink.stages))
	for name := range benchStageSink.stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		report.Benchmarks = append(report.Benchmarks, benchPipelineEntry{
			Name:         name,
			StageSeconds: benchStageSink.stages[name],
		})
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_JSON"); path != "" && code == 0 {
		if err := writeBenchJSON(path); err != nil {
			fmt.Fprintln(os.Stderr, "writing", path+":", err)
			code = 1
		}
	}
	os.Exit(code)
}
