package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
)

// benchStageSink accumulates the telemetry-derived per-stage seconds
// that reportStageTimings attaches to pipeline benchmarks. When the
// BENCH_JSON environment variable names a file, TestMain writes the
// collected breakdown there after the run — `make bench` uses this to
// produce BENCH_pipeline.json.
var benchStageSink = struct {
	sync.Mutex
	stages map[string]map[string]float64 // benchmark -> stage label -> s/op
}{}

func recordStageSeconds(bench, stage string, secPerOp float64) {
	benchStageSink.Lock()
	defer benchStageSink.Unlock()
	if benchStageSink.stages == nil {
		benchStageSink.stages = map[string]map[string]float64{}
	}
	if benchStageSink.stages[bench] == nil {
		benchStageSink.stages[bench] = map[string]float64{}
	}
	benchStageSink.stages[bench][stage] = secPerOp
}

// benchPipelineReport is the BENCH_pipeline.json schema. It carries no
// timestamps or host details: two runs differ only in the measured
// seconds, so diffs show performance movement and nothing else.
type benchPipelineReport struct {
	Schema     string               `json:"schema"`
	Benchmarks []benchPipelineEntry `json:"benchmarks"`
}

type benchPipelineEntry struct {
	Name string `json:"name"`
	// StageSeconds maps harness stage labels (synthesis, profiling,
	// optimization, metrics) to wall-clock seconds per benchmark op.
	StageSeconds map[string]float64 `json:"stage_seconds"`
}

// sketchRecallReport is the BENCH_sketch.json schema: the measured
// recall-vs-cost numbers of sketch-pruned k-NN against the exact pair
// loop (TestSketchRecallContract). Fully deterministic — no timings —
// so the committed snapshot only changes when retrieval quality does.
type sketchRecallReport struct {
	Schema              string  `json:"schema"`
	Corpus              int     `json:"corpus"`
	Queries             int     `json:"queries"`
	K                   int     `json:"k"`
	CandidateBudget     int     `json:"candidate_budget"`
	RecallAtK           float64 `json:"recall_at_k"`
	ExactEvalsPerQuery  float64 `json:"exact_evals_per_query"`
	SketchEvalsPerQuery float64 `json:"sketch_evals_per_query"`
	EvalRatio           float64 `json:"eval_ratio"`
}

var sketchRecallSink = struct {
	sync.Mutex
	report *sketchRecallReport
}{}

func recordSketchRecall(r sketchRecallReport) {
	sketchRecallSink.Lock()
	defer sketchRecallSink.Unlock()
	r.Schema = "bench-sketch/v1"
	sketchRecallSink.report = &r
}

// writeSketchJSON snapshots the recall study when BENCH_SKETCH_JSON
// names a file — `make bench` uses this to produce BENCH_sketch.json.
func writeSketchJSON(path string) error {
	sketchRecallSink.Lock()
	defer sketchRecallSink.Unlock()
	if sketchRecallSink.report == nil {
		return fmt.Errorf("no sketch recall data recorded (did TestSketchRecallContract run?)")
	}
	data, err := json.MarshalIndent(sketchRecallSink.report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeBenchJSON(path string) error {
	benchStageSink.Lock()
	defer benchStageSink.Unlock()
	report := benchPipelineReport{Schema: "bench-pipeline/v1"}
	names := make([]string, 0, len(benchStageSink.stages))
	for name := range benchStageSink.stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		report.Benchmarks = append(report.Benchmarks, benchPipelineEntry{
			Name:         name,
			StageSeconds: benchStageSink.stages[name],
		})
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_JSON"); path != "" && code == 0 {
		if err := writeBenchJSON(path); err != nil {
			fmt.Fprintln(os.Stderr, "writing", path+":", err)
			code = 1
		}
	}
	if path := os.Getenv("BENCH_SKETCH_JSON"); path != "" && code == 0 {
		if err := writeSketchJSON(path); err != nil {
			fmt.Fprintln(os.Stderr, "writing", path+":", err)
			code = 1
		}
	}
	os.Exit(code)
}
