package repro

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/simil"
	"repro/internal/sketch"
	"repro/internal/synth"
	"repro/internal/tt"
)

// ---------------------------------------------------------------------
// The sketch retrieval contract: on a ≥1k corpus of synthesized
// variants, sketch-pruned k-NN must reach recall@10 ≥ 0.95 against the
// exact pair loop while spending ≥10x fewer full metric evaluations.
// TestSketchRecallContract asserts it; `make bench` snapshots the
// measured numbers into BENCH_sketch.json (see bench_json_test.go).
// ---------------------------------------------------------------------

const (
	sketchCorpusFamilies = 75 // families × ~14 variants ≈ 1050 graphs
	sketchRecallK        = 10
	sketchCandBudget     = 100
)

type sketchVariant struct {
	fp      string
	profile *simil.Profile
}

var sketchCorpusOnce = struct {
	sync.Once
	variants []sketchVariant
	index    *sketch.Index
	families [][]int // variant indices per family, for sanity checks
}{}

// sketchCorpus synthesizes the retrieval corpus once per test binary:
// families of structural near-duplicates — one synthesis recipe
// (rotating per family) over a random 6-input function and thirteen
// single-minterm perturbations of it — profiled with the sketch
// artifact and indexed. Families make top-10 retrieval meaningful:
// each query has ≥10 genuinely similar graphs amid a cloud of
// unrelated functions, the near-duplicate regime the index exists
// for. (On a corpus of near-equidistant graphs recall@k is an
// information-theoretic coin flip for any sub-quadratic method; that
// regime is what the exact=true fallback is for.)
func sketchCorpus(tb testing.TB) ([]sketchVariant, *sketch.Index, [][]int) {
	tb.Helper()
	sketchCorpusOnce.Do(func() {
		r := rand.New(rand.NewSource(9001))
		recipes := synth.Recipes()
		ix := sketch.NewIndex()
		seen := make(map[string]bool)
		var variants []sketchVariant
		var families [][]int
		for fam := 0; fam < sketchCorpusFamilies; fam++ {
			rec := recipes[fam%len(recipes)]
			f := tt.Random(7, r)
			specs := [][]tt.TT{{f}}
			for _, m := range r.Perm(1 << 7)[:13] {
				f2 := f.Clone()
				f2.SetBit(m, !f2.Bit(m))
				specs = append(specs, []tt.TT{f2})
			}
			var members []int
			for _, spec := range specs {
				g := rec.Build(spec)
				fp := g.Fingerprint()
				if seen[fp] {
					continue
				}
				seen[fp] = true
				p := simil.NewProfileFor(g, simil.ProfileOptions{}, simil.NeedSketch)
				members = append(members, len(variants))
				variants = append(variants, sketchVariant{fp: fp, profile: p})
				ix.Insert(fp, p.Sketch())
			}
			families = append(families, members)
		}
		sketchCorpusOnce.variants = variants
		sketchCorpusOnce.index = ix
		sketchCorpusOnce.families = families
	})
	return sketchCorpusOnce.variants, sketchCorpusOnce.index, sketchCorpusOnce.families
}

// exactTopK ranks the whole corpus against query q by WLKernel
// (descending; fingerprint breaks ties) — the ground truth.
func exactTopK(variants []sketchVariant, q, k int) []string {
	type scored struct {
		fp    string
		score float64
	}
	all := make([]scored, 0, len(variants)-1)
	for i := range variants {
		if i == q {
			continue
		}
		all = append(all, scored{variants[i].fp, simil.WLKernel(variants[q].profile, variants[i].profile)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].fp < all[j].fp
	})
	out := make([]string, 0, k)
	for i := 0; i < k && i < len(all); i++ {
		out = append(out, all[i].fp)
	}
	return out
}

// sketchTopK is the two-stage path: WL-band retrieval caps the
// candidate set, then the full metric ranks only the survivors.
// Returns the top-k and the number of full evaluations spent.
func sketchTopK(variants []sketchVariant, ix *sketch.Index, byFP map[string]int, q, k, budget int) ([]string, int) {
	qp := variants[q].profile
	qs := qp.Sketch()
	cands, _ := ix.Query(variants[q].fp, qs, qs.Distance, budget)
	type scored struct {
		fp    string
		score float64
	}
	ranked := make([]scored, 0, len(cands))
	for _, c := range cands {
		ranked = append(ranked, scored{c.FP, simil.WLKernel(qp, variants[byFP[c.FP]].profile)})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].fp < ranked[j].fp
	})
	out := make([]string, 0, k)
	for i := 0; i < k && i < len(ranked); i++ {
		out = append(out, ranked[i].fp)
	}
	return out, len(ranked)
}

// TestSketchRecallContract measures recall@10 of sketch-pruned k-NN
// against the exact pair loop over the ≥1k corpus and asserts the
// recall-vs-cost contract DESIGN.md documents. The measured numbers
// also feed the BENCH_sketch.json snapshot.
func TestSketchRecallContract(t *testing.T) {
	variants, ix, families := sketchCorpus(t)
	if len(variants) < 1000 {
		t.Fatalf("corpus has %d variants, want >= 1000", len(variants))
	}
	byFP := make(map[string]int, len(variants))
	for i, v := range variants {
		byFP[v.fp] = i
	}

	// One query per family: its first member, so every query has a
	// full complement of similar graphs to retrieve.
	totalRecall := 0.0
	queries := 0
	sketchEvals := 0
	for _, fam := range families {
		if len(fam) == 0 {
			continue
		}
		q := fam[0]
		exact := exactTopK(variants, q, sketchRecallK)
		approx, evals := sketchTopK(variants, ix, byFP, q, sketchRecallK, sketchCandBudget)
		sketchEvals += evals
		inExact := make(map[string]bool, len(exact))
		for _, fp := range exact {
			inExact[fp] = true
		}
		hit := 0
		for _, fp := range approx {
			if inExact[fp] {
				hit++
			}
		}
		totalRecall += float64(hit) / float64(len(exact))
		queries++
	}
	recall := totalRecall / float64(queries)
	exactPerQuery := float64(len(variants) - 1)
	sketchPerQuery := float64(sketchEvals) / float64(queries)
	ratio := exactPerQuery / sketchPerQuery

	t.Logf("corpus=%d queries=%d recall@%d=%.4f evals exact=%.0f sketch=%.1f ratio=%.1fx",
		len(variants), queries, sketchRecallK, recall, exactPerQuery, sketchPerQuery, ratio)

	if recall < 0.95 {
		t.Errorf("recall@%d = %.4f, want >= 0.95", sketchRecallK, recall)
	}
	if ratio < 10 {
		t.Errorf("full-eval ratio = %.1fx, want >= 10x", ratio)
	}
	recordSketchRecall(sketchRecallReport{
		Corpus:              len(variants),
		Queries:             queries,
		K:                   sketchRecallK,
		CandidateBudget:     sketchCandBudget,
		RecallAtK:           recall,
		ExactEvalsPerQuery:  exactPerQuery,
		SketchEvalsPerQuery: sketchPerQuery,
		EvalRatio:           ratio,
	})
}

// BenchmarkSketchNeighbors times one k-NN query both ways over the 1k
// corpus — the wall-clock side of the recall-vs-cost contract.
func BenchmarkSketchNeighbors(b *testing.B) {
	variants, ix, _ := sketchCorpus(b)
	byFP := make(map[string]int, len(variants))
	for i, v := range variants {
		byFP[v.fp] = i
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exactTopK(variants, i%len(variants), sketchRecallK)
		}
		b.ReportMetric(float64(len(variants)-1), "evals/op")
	})
	b.Run("sketch", func(b *testing.B) {
		evals := 0
		for i := 0; i < b.N; i++ {
			_, n := sketchTopK(variants, ix, byFP, i%len(variants), sketchRecallK, sketchCandBudget)
			evals += n
		}
		b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
	})
}
