// Package repro is the public facade of the Bias-by-Design
// reproduction: structural-diversity quantification for And-Inverter
// Graphs (Gardner et al., DATE 2025).
//
// The library lets a synthesis flow generate structurally diverse,
// functionally equivalent AIGs for a Boolean function, measure their
// pairwise structural dissimilarity before optimization (RRR Score and
// friends), and use those measurements to decide which starting points
// are worth optimizing — the paper's antidote to structural bias.
//
// Subsystem packages: internal/tt (truth tables), internal/aig (the
// graph), internal/aiger (I/O), internal/synth (seven synthesis
// recipes), internal/opt (rewrite/refactor/resub/balance + flows),
// internal/simil (the metrics), internal/harness (the paper's
// experiment).
package repro

import (
	"fmt"
	"sort"

	"repro/internal/aig"
	"repro/internal/opt"
	"repro/internal/simil"
	"repro/internal/sop"
	"repro/internal/synth"
	"repro/internal/tt"
)

// Variant is one synthesized implementation of a function.
type Variant struct {
	Recipe  string
	AIG     *aig.AIG
	Profile *simil.Profile
}

// SynthesizeAll builds the function with every recipe and profiles each
// result, ready for pairwise diversity measurement.
func SynthesizeAll(spec []tt.TT) []Variant {
	var out []Variant
	for _, r := range synth.Recipes() {
		g := r.Build(spec)
		out = append(out, Variant{
			Recipe:  r.Name,
			AIG:     g,
			Profile: simil.NewProfile(g, simil.ProfileOptions{}),
		})
	}
	return out
}

// PairScore is the RRR Score between two variants.
type PairScore struct {
	A, B  string
	Score float64
}

// DiversityMatrix computes the pairwise RRR Scores of the variants,
// sorted most-diverse first.
func DiversityMatrix(vs []Variant) []PairScore {
	var out []PairScore
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			out = append(out, PairScore{
				A:     vs[i].Recipe,
				B:     vs[j].Recipe,
				Score: simil.RRRScore(vs[i].Profile, vs[j].Profile),
			})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out
}

// SelectDiverse greedily picks k variants maximizing the minimum pairwise
// RRR Score — the paper's recipe for choosing which parallel optimization
// runs are worth paying for. The first pick is the variant with the best
// single-step reduction potential.
func SelectDiverse(vs []Variant, k int) []Variant {
	if k >= len(vs) {
		return vs
	}
	if k <= 0 {
		return nil
	}
	// Seed with the variant with the largest reduction vector norm.
	best := 0
	bestNorm := -1.0
	for i, v := range vs {
		r := v.Profile.Reductions()
		n := r[0]*r[0] + r[1]*r[1] + r[2]*r[2]
		if n > bestNorm {
			best, bestNorm = i, n
		}
	}
	chosen := []int{best}
	for len(chosen) < k {
		next, nextScore := -1, -1.0
		for i := range vs {
			if containsInt(chosen, i) {
				continue
			}
			// Minimum distance to the chosen set.
			minD := -1.0
			for _, c := range chosen {
				d := simil.RRRScore(vs[i].Profile, vs[c].Profile)
				if minD < 0 || d < minD {
					minD = d
				}
			}
			if minD > nextScore {
				next, nextScore = i, minD
			}
		}
		chosen = append(chosen, next)
	}
	out := make([]Variant, len(chosen))
	for i, c := range chosen {
		out[i] = vs[c]
	}
	return out
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Optimize runs the named flow (orchestrate, dc2, deepsyn) on the AIG.
func Optimize(g *aig.AIG, flow string, seed int64) (*aig.AIG, error) {
	return opt.RunFlow(flow, g, seed)
}

// OptimizeBest optimizes every given variant with the flow and returns
// the smallest result along with the recipe that produced it.
func OptimizeBest(vs []Variant, flow string, seed int64) (*aig.AIG, string, error) {
	if len(vs) == 0 {
		return nil, "", fmt.Errorf("repro: no variants to optimize")
	}
	var best *aig.AIG
	bestRecipe := ""
	for _, v := range vs {
		og, err := opt.RunFlow(flow, v.AIG, seed)
		if err != nil {
			return nil, "", err
		}
		if best == nil || og.NumAnds() < best.NumAnds() {
			best, bestRecipe = og, v.Recipe
		}
	}
	return best, bestRecipe, nil
}

// sopMinCubes reports the espresso-minimized cube count of a function
// (used by the two-level minimization ablation bench).
func sopMinCubes(f tt.TT) int {
	return sop.MinimizeTT(f).NumCubes()
}
