// Multigraph: the paper's future-work section applied — the diversity
// framework on XOR-AND Graphs and Majority-Inverter Graphs. For one
// function we synthesize diverse XAG and MIG variants, profile them with
// the transplanted metrics (RGC / RLC / single-step Rewrite Score), and
// show that "structural diversity" means different things per graph
// type: parity is one structure in an XAG and many in an AIG; majority
// collapses in a MIG and sprawls everywhere else.
package main

import (
	"fmt"

	"repro/internal/mig"
	"repro/internal/tt"
	"repro/internal/workload"
	"repro/internal/xag"
)

func main() {
	// A function with both XOR character and majority character:
	// full-adder sum (xor3) and carry (maj3), over 3 inputs — plus a
	// bigger mixed function for the scores.
	specs := map[string][]tt.TT{
		"fulladder": workload.FullAdder(),
		"parity6":   {workload.Parity(6)},
		"median5":   {workload.Threshold(5, 3)},
	}
	order := []string{"fulladder", "parity6", "median5"}

	for _, name := range order {
		spec := specs[name]
		fmt.Printf("=== %s ===\n", name)

		fmt.Println("XAG variants:")
		var xps []xag.Profile
		for _, rec := range xag.Recipes() {
			g := rec.Build(spec)
			p := xag.NewProfile(g)
			xps = append(xps, p)
			fmt.Printf("  %-10s %v   rewrite-reduction=%.3f\n", rec.Name, g.Stat(), p.Reduction)
		}
		fmt.Println("  pairwise XAG scores (RGC / RMC / RewriteScore):")
		recipes := xag.Recipes()
		for i := 0; i < len(xps); i++ {
			for j := i + 1; j < len(xps); j++ {
				fmt.Printf("    %-10s vs %-10s %.3f / %.3f / %.3f\n",
					recipes[i].Name, recipes[j].Name,
					xag.RGC(xps[i], xps[j]), xag.RMC(xps[i], xps[j]), xag.RewriteScore(xps[i], xps[j]))
			}
		}

		fmt.Println("MIG variants:")
		var mps []mig.Profile
		for _, rec := range mig.Recipes() {
			g := rec.Build(spec)
			p := mig.NewProfile(g)
			mps = append(mps, p)
			fmt.Printf("  %-10s %v   rewrite-reduction=%.3f\n", rec.Name, g.Stat(), p.Reduction)
		}
		fmt.Println("  pairwise MIG scores (RGC / RewriteScore):")
		mrecipes := mig.Recipes()
		for i := 0; i < len(mps); i++ {
			for j := i + 1; j < len(mps); j++ {
				fmt.Printf("    %-10s vs %-10s %.3f / %.3f\n",
					mrecipes[i].Name, mrecipes[j].Name,
					mig.RGC(mps[i], mps[j]), mig.RewriteScore(mps[i], mps[j]))
			}
		}
		fmt.Println()
	}
}
