// Contest: an IWLS-style mini contest. For a slice of the benchmark
// suite, synthesize each function with every recipe, optimize each
// starting point with dc2, and report the best node count per function —
// the pipeline contest entries run, here driven by the library.
package main

import (
	"flag"
	"fmt"

	"repro/internal/aig"
	"repro/internal/opt"
	"repro/internal/synth"
	"repro/internal/workload"
)

func main() {
	count := flag.Int("n", 8, "number of suite specs to run")
	maxIn := flag.Int("max-inputs", 7, "skip larger specs")
	flag.Parse()

	specs := workload.FilterByInputs(workload.Suite(2024), *maxIn)
	if len(specs) > *count {
		specs = specs[:*count]
	}

	fmt.Printf("%-20s %6s | %-10s %7s -> %7s\n", "spec", "in/out", "winner", "synth", "final")
	totalBest := 0
	for _, s := range specs {
		best := -1
		bestRecipe := ""
		bestStart := 0
		for _, r := range synth.Recipes() {
			g := r.Build(s.Outputs)
			og := opt.DC2(g)
			if idx, err := aig.Equivalent(g, og); err != nil || idx != -1 {
				panic(fmt.Sprintf("%s/%s: optimization broke equivalence", s.Name, r.Name))
			}
			if best == -1 || og.NumAnds() < best {
				best = og.NumAnds()
				bestRecipe = r.Name
				bestStart = g.NumAnds()
			}
		}
		fmt.Printf("%-20s %3d/%-2d | %-10s %7d -> %7d\n",
			s.Name, s.NumInputs(), len(s.Outputs), bestRecipe, bestStart, best)
		totalBest += best
	}
	fmt.Printf("\ntotal best node count over %d functions: %d\n", len(specs), totalBest)
}
