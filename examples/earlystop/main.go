// Earlystop: the paper's motivating use case. Running all seven
// synthesis variants through a high-effort flow is expensive; the RRR
// Score lets us keep only a few structurally diverse starting points and
// still reach (nearly) the same best result.
//
// The example compares three strategies on a handful of benchmark
// functions:
//
//  1. optimize every variant (the expensive baseline),
//  2. optimize k RRR-diverse variants (the paper's proposal),
//  3. optimize k arbitrary variants (the naive cut).
package main

import (
	"fmt"

	"repro"
	"repro/internal/workload"
)

func main() {
	const k = 3
	const flow = "dc2"
	names := []string{"present_sbox_all", "median7", "mult3x3", "fulladder", "rand04_n8_o2"}
	suite := workload.Suite(2024)

	fmt.Printf("strategy comparison with flow %q, k = %d of 7 variants\n\n", flow, k)
	fmt.Printf("%-18s %9s %12s %12s %12s\n", "spec", "variants", "opt-all", "RRR-pick", "naive-pick")

	totalAll, totalRRR, totalNaive := 0, 0, 0
	for _, name := range names {
		var spec *workload.Spec
		for i := range suite {
			if suite[i].Name == name {
				spec = &suite[i]
				break
			}
		}
		if spec == nil {
			fmt.Printf("%-18s (not in suite)\n", name)
			continue
		}
		variants := repro.SynthesizeAll(spec.Outputs)

		bestAll, _, err := repro.OptimizeBest(variants, flow, 1)
		if err != nil {
			panic(err)
		}
		diverse := repro.SelectDiverse(variants, k)
		bestRRR, _, err := repro.OptimizeBest(diverse, flow, 1)
		if err != nil {
			panic(err)
		}
		bestNaive, _, err := repro.OptimizeBest(variants[:k], flow, 1)
		if err != nil {
			panic(err)
		}

		fmt.Printf("%-18s %9d %12d %12d %12d\n",
			name, len(variants), bestAll.NumAnds(), bestRRR.NumAnds(), bestNaive.NumAnds())
		totalAll += bestAll.NumAnds()
		totalRRR += bestRRR.NumAnds()
		totalNaive += bestNaive.NumAnds()
	}
	fmt.Printf("\n%-18s %9s %12d %12d %12d\n", "TOTAL", "", totalAll, totalRRR, totalNaive)
	fmt.Printf("\nRRR-guided selection pays for %d/%d of the optimization runs.\n", 3, 7)
}
