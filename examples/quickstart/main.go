// Quickstart: build the paper's Figure 1 full adder as an AIG, write it
// to AIGER, synthesize it from its truth tables with two recipes, and
// optimize it with the three high-effort flows.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/aig"
	"repro/internal/aiger"
	"repro/internal/opt"
	"repro/internal/synth"
	"repro/internal/workload"
)

func main() {
	// --- Figure 1: the full adder, built by hand. ----------------------
	g := aig.New(3)
	x1, x2, x3 := g.PI(0), g.PI(1), g.PI(2)
	halfSum := g.Xor(x1, x2)
	sum := g.Xor(halfSum, x3)
	carry := g.Or(g.And(x1, x2), g.And(halfSum, x3))
	g.AddPO(carry)
	g.AddPO(sum)
	g.SetPOName(0, "carry")
	g.SetPOName(1, "sum")
	g = g.Cleanup()
	fmt.Printf("full adder (hand-built):   %v\n", g.Stat())

	// Write and re-read AIGER.
	dir, err := os.MkdirTemp("", "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "fulladder.aag")
	if err := aiger.WriteFile(path, g); err != nil {
		log.Fatal(err)
	}
	back, err := aiger.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	if idx, _ := aig.Equivalent(g, back); idx != -1 {
		log.Fatal("AIGER round trip changed the function")
	}
	fmt.Printf("AIGER round trip:          ok (%s)\n", filepath.Base(path))

	// --- Synthesize the same function from its specification. ----------
	spec := workload.FullAdder()
	for _, recipe := range []string{"sop", "bdd"} {
		sg, err := synth.Synthesize(recipe, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("synthesized via %-8s   %v\n", recipe+":", sg.Stat())
	}

	// --- Optimize with the paper's three flows. -------------------------
	for _, flow := range opt.Flows() {
		og := flow.Run(g, 1)
		if idx, _ := aig.Equivalent(g, og); idx != -1 {
			log.Fatalf("%s broke equivalence", flow.Name)
		}
		fmt.Printf("optimized with %-12s %v\n", flow.Name+":", og.Stat())
	}
}
