// Diversity: synthesize one function with all seven recipes, then rank
// every pair by the RRR Score (Eq. 4) — the paper's structural-diversity
// quantification in action. High-scoring pairs are the ones worth running
// in parallel; near-zero pairs waste compute on redundant structure.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/aig"
	"repro/internal/tt"
	"repro/internal/workload"
)

func main() {
	// The PRESENT cipher S-box: compact but structurally rich.
	var outputs []tt.TT
	for _, s := range workload.Suite(2024) {
		if s.Name == "present_sbox_all" {
			outputs = s.Outputs
			break
		}
	}
	if outputs == nil {
		log.Fatal("present_sbox_all not found in the suite")
	}

	variants := repro.SynthesizeAll(outputs)
	fmt.Println("synthesis diversity for present_sbox_all:")
	fmt.Printf("%-10s %8s %8s   %s\n", "recipe", "ands", "levels", "single-step reductions (rw, rf, rs)")
	for _, v := range variants {
		r := v.Profile.Reductions()
		fmt.Printf("%-10s %8d %8d   (%.3f, %.3f, %.3f)\n",
			v.Recipe, v.AIG.NumAnds(), v.AIG.NumLevels(), r[0], r[1], r[2])
	}

	// Sanity: all variants are functionally equivalent.
	for _, v := range variants[1:] {
		if idx, err := aig.Equivalent(variants[0].AIG, v.AIG); err != nil || idx != -1 {
			log.Fatalf("variant %s is not equivalent (output %d, err %v)", v.Recipe, idx, err)
		}
	}

	fmt.Println("\npairwise RRR Scores (most diverse first):")
	for _, p := range repro.DiversityMatrix(variants) {
		fmt.Printf("%-10s vs %-10s %.4f\n", p.A, p.B, p.Score)
	}
}
