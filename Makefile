# Test tiers. tier1 is the seed gate (must always stay green); tier2
# adds static analysis and the race detector over the concurrency-safe
# telemetry layer and everything it instruments.

.PHONY: tier1 tier2 bench

tier1:
	go build ./... && go test ./...

tier2:
	go vet ./... && go test -race ./...

# bench runs every benchmark once; the pipeline benchmarks report a
# telemetry-derived per-stage breakdown (synthesis/profiling/
# optimization/metrics seconds per op) alongside ns/op.
bench:
	go test -run '^$$' -bench . -benchtime 1x .
