# Test tiers. tier1 is the seed gate (must always stay green); tier2
# adds static analysis — go vet plus the domain lint suite (aiglint:
# AIG-literal discipline, emission determinism, dropped errors, metric
# names, ResponseWriter write errors, fault-point naming, and the
# concurrency-safety layer: lockheld, ctxflow, golifecycle, atomicmix)
# — and the race detector over the concurrency-safe telemetry
# layer and everything it instruments, including the fault-tolerance
# suite (checkpoint/resume byte-identity, panic quarantine, equivalence
# guards) in internal/harness.

.PHONY: tier1 tier2 lint bench fuzz chaos serve

tier1:
	go build ./... && go test ./...

tier2:
	go vet ./... && go run ./cmd/aiglint ./... && go test -race ./...

# lint runs only the domain analyzers, verbosely (finding counts,
# suppression counts, and per-analyzer timings — the ten analyzers run
# concurrently over one shared go/types load, so the whole module
# checks in seconds). Findings exit nonzero with file:line positions.
# Machine consumers (CI annotations) use `aiglint -json` instead.
lint:
	go run ./cmd/aiglint -v ./...

# serve runs the diversity-as-a-service daemon (see README "Serving").
# Override the listen address with AIGD_ADDR=:9000.
AIGD_ADDR ?= :8347

serve:
	go run ./cmd/aigd -addr $(AIGD_ADDR)

# fuzz hammers the AIGER parser with coverage-guided random inputs;
# the target asserts parse-or-error (never panic) plus write/read
# round-trip equivalence. Override the budget with FUZZTIME=1m.
FUZZTIME ?= 10s

fuzz:
	go test -run '^$$' -fuzz '^FuzzRead$$' -fuzztime $(FUZZTIME) ./internal/aiger
	go test -run '^$$' -fuzz '^FuzzHandlers$$' -fuzztime $(FUZZTIME) ./internal/service
	go test -run '^$$' -fuzz '^FuzzCodec$$' -fuzztime $(FUZZTIME) ./internal/sketch

# chaos runs the deterministic fault-injection suite under the race
# detector: the faultinject registry's own tests, the client and
# cluster suites (partition mid-request, torn fill replies, replication
# killed mid-fan-out, eviction/re-admission), plus every TestChaos*
# scenario (atomic-write fault matrix, torn-checkpoint resume
# byte-identity, spill degradation, restart recovery sweeps, idempotent
# retry accounting). See README "Fault injection & chaos testing".
chaos:
	go test -race ./internal/faultinject ./internal/service/client ./internal/cluster
	go test -race -run '^TestChaos' ./internal/harness ./internal/service

# bench runs every benchmark once; the pipeline benchmarks report a
# telemetry-derived per-stage breakdown (synthesis/profiling/
# optimization/metrics seconds per op) alongside ns/op, and the same
# breakdown is written to BENCH_pipeline.json for machine consumption.
# The recall contract test runs alongside so its deterministic
# recall-vs-cost numbers are snapshotted into BENCH_sketch.json.
bench:
	BENCH_JSON=BENCH_pipeline.json BENCH_SKETCH_JSON=BENCH_sketch.json \
		go test -run '^TestSketchRecallContract$$' -bench . -benchtime 1x .
