# Test tiers. tier1 is the seed gate (must always stay green); tier2
# adds static analysis and the race detector over the concurrency-safe
# telemetry layer and everything it instruments — including the
# fault-tolerance suite (checkpoint/resume byte-identity, panic
# quarantine, equivalence guards) in internal/harness.

.PHONY: tier1 tier2 bench fuzz

tier1:
	go build ./... && go test ./...

tier2:
	go vet ./... && go test -race ./...

# fuzz hammers the AIGER parser with coverage-guided random inputs;
# the target asserts parse-or-error (never panic) plus write/read
# round-trip equivalence. Override the budget with FUZZTIME=1m.
FUZZTIME ?= 10s

fuzz:
	go test -run '^$$' -fuzz '^FuzzRead$$' -fuzztime $(FUZZTIME) ./internal/aiger

# bench runs every benchmark once; the pipeline benchmarks report a
# telemetry-derived per-stage breakdown (synthesis/profiling/
# optimization/metrics seconds per op) alongside ns/op.
bench:
	go test -run '^$$' -bench . -benchtime 1x .
